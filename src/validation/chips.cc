#include "validation/chips.h"

#include "analog/acomponent.h"
#include "memmodel/regfile.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj
{

namespace
{

/** Pixel-array helper: components = pixels / pixelsPerComponent. */
AnalogArray
makePixelArray(const std::string &name, int64_t comp_w, int64_t comp_h,
               const AComponent &pixel, double pitch_um,
               int pixels_per_component, int64_t row_width)
{
    AnalogArrayParams p;
    p.name = name;
    p.layer = Layer::Sensor;
    p.numComponents = {comp_w, comp_h, 1};
    p.inputShape = {1, row_width, 1};
    p.outputShape = {1, row_width, 1};
    p.componentArea = pitch_um * pitch_um * units::um2 *
                      pixels_per_component;
    return AnalogArray(p, pixel);
}

/** Column-parallel helper for PE / memory / ADC arrays. */
AnalogArray
makeColumnArray(const std::string &name, int64_t cols,
                const AComponent &comp, Area component_area,
                int64_t row_width)
{
    AnalogArrayParams p;
    p.name = name;
    p.layer = Layer::Sensor;
    p.numComponents = {cols, 1, 1};
    p.inputShape = {1, row_width, 1};
    p.outputShape = {1, row_width, 1};
    p.componentArea = component_area;
    return AnalogArray(p, comp);
}

/** Current-domain MAC used by the PWM-pixel chips (time in,
 *  current out): integration cap plus a bias branch. */
AComponent
makeCurrentMac(Voltage vdda, Capacitance integration_cap)
{
    AComponent c("I-MAC", SignalDomain::Time, SignalDomain::Current);
    c.addCell(std::make_shared<DynamicCell>(
                  "integration-cap",
                  std::vector<CapNode>{ { integration_cap, 0.3 } }),
              1, 1);
    StaticBiasParams sb;
    sb.loadCapacitance = integration_cap;
    sb.voltageSwing = 0.3;
    sb.vdda = vdda;
    sb.mode = BiasMode::DirectDrive;
    c.addCell(std::make_shared<StaticBiasedCell>("bias-branch", sb), 1,
              1);
    return c;
}

/** Current-input ADC (current-domain designs digitize directly). */
AComponent
makeCurrentAdc(int bits)
{
    AComponent c("I-ADC", SignalDomain::Current, SignalDomain::Digital);
    c.addCell(std::make_shared<NonLinearCell>("i-adc", bits), 1, 1);
    return c;
}

constexpr Area columnAdcArea = 1.0e-9;   // pitch-matched column ADC
constexpr Area analogPeArea = 2.0e-10;   // switched-cap PE cell
constexpr Area analogMemArea = 1.0e-10;  // analog memory cell

} // namespace

ChipInfo
buildIsscc17()
{
    ChipInfo info;
    info.id = "ISSCC'17";
    info.description =
        "65nm CNN face-recognition CIS: 3T APS, analog average/add "
        "front-end, 20x80 analog memory, 160KB SRAM, MAC array";
    info.pixels = 320 * 240;

    DesignParams dp;
    dp.name = "isscc17-facerec";
    dp.fps = 10.0;
    dp.digitalClock = 50e6;
    auto d = std::make_shared<Design>(dp);

    // Algorithm: 4x4 analog binning (Haar front-end), analog feature
    // scaling, then a small two-layer CNN in the digital domain.
    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {320, 240, 1},
                              .bitDepth = 8});
    StageId bin = sw.addStage({.name = "HaarBin",
                               .op = StageOp::Binning,
                               .inputSize = {320, 240, 1},
                               .outputSize = {80, 60, 1},
                               .kernel = {4, 4, 1},
                               .stride = {4, 4, 1}});
    StageId haar = sw.addStage({.name = "HaarFeature",
                                .op = StageOp::Scale,
                                .inputSize = {80, 60, 1},
                                .outputSize = {80, 60, 1}});
    StageId conv1 = sw.addStage({.name = "Conv1",
                                 .op = StageOp::Conv2d,
                                 .inputSize = {80, 60, 1},
                                 .outputSize = {39, 29, 8},
                                 .kernel = {4, 4, 1},
                                 .stride = {2, 2, 1}});
    StageId conv2 = sw.addStage({.name = "Conv2",
                                 .op = StageOp::Conv2d,
                                 .inputSize = {39, 29, 8},
                                 .outputSize = {19, 14, 16},
                                 .kernel = {3, 3, 8},
                                 .stride = {2, 2, 1}});
    sw.connect(in, bin);
    sw.connect(bin, haar);
    sw.connect(haar, conv1);
    sw.connect(conv1, conv2);

    // Analog chain.
    const NodeParams node = nodeParams(65);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 1.0e-12;
    aps.pixelsPerComponent = 16; // 4x4 charge-binning cluster
    d->addAnalogArray(makePixelArray("PixelArray", 80, 60,
                                     makeAps3T(aps), 7.0, 16, 80),
                      AnalogRole::Sensing);

    SwitchedCapParams sc;
    sc.vdda = node.vdda;
    sc.bits = 6;
    d->addAnalogArray(makeColumnArray("HaarAddArray", 80,
                                      makeScaler(sc), analogPeArea, 80),
                      AnalogRole::AnalogCompute);

    AnalogMemoryParams am;
    am.vdda = node.vdda;
    am.bits = 6;
    {
        AnalogArrayParams ap;
        ap.name = "AnalogMem";
        ap.numComponents = {80, 20, 1};
        ap.inputShape = {1, 80, 1};
        ap.outputShape = {1, 80, 1};
        ap.componentArea = analogMemArea;
        d->addAnalogArray(AnalogArray(ap, makeActiveAnalogMemory(am)),
                          AnalogRole::AnalogMemory);
    }

    d->addAnalogArray(makeColumnArray("AdcArray", 80,
                                      makeColumnAdc({.bits = 10}),
                                      columnAdcArea, 80),
                      AnalogRole::Adc);

    // Digital: 16x16 MAC array plus the 160 KB SRAM.
    // The chip power-collapses the CNN memory between face events;
    // only a small always-on fraction of the frame keeps it powered.
    d->addMemory(makeSramMemory("Sram160K", Layer::Sensor,
                                MemoryKind::DoubleBuffer,
                                160 * 1024 / 8, 64, 65, 0.12));
    SystolicArrayParams sp;
    sp.name = "CnnPe";
    sp.layer = Layer::Sensor;
    sp.rows = 16;
    sp.cols = 16;
    sp.energyPerMac = macEnergy8bit(65);
    sp.peArea = macArea8bit(65);
    d->addSystolicArray(SystolicArray(sp));
    d->setAdcOutput("Sram160K");
    d->connectMemoryToUnit("Sram160K", "CnnPe");

    d->setMipi(makeMipiCsi2());
    d->setPipelineOutputBytes(16); // face-detection result record

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("HaarBin", "PixelArray");
    m.map("HaarFeature", "HaarAddArray");
    m.map("Conv1", "CnnPe");
    m.map("Conv2", "CnnPe");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"HaarAddArray"}},
        {"Analog Mem", {"AnalogMem"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"CnnPe"}},
        {"Memory", {"Sram160K"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildJssc19()
{
    ChipInfo info;
    info.id = "JSSC'19";
    info.description =
        "130nm data-compressive log-gradient QVGA sensor: 4T APS, "
        "column logarithmic response, 2.75b multi-scale readout";
    info.pixels = 320 * 240;

    DesignParams dp;
    dp.name = "jssc19-loggrad";
    dp.fps = 30.0;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {320, 240, 1},
                              .bitDepth = 8});
    StageId lg = sw.addStage({.name = "LogGradient",
                              .op = StageOp::LogResponse,
                              .inputSize = {320, 240, 1},
                              .outputSize = {320, 240, 1},
                              .bitDepth = 3});
    sw.connect(in, lg);

    const NodeParams node = nodeParams(130);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 1.2e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 320, 240,
                                     makeAps4T(aps), 5.0, 1, 320),
                      AnalogRole::Sensing);
    d->addAnalogArray(makeColumnArray("LogArray", 320,
                                      makeLogUnit(50e-15, node.vdda),
                                      analogPeArea, 320),
                      AnalogRole::AnalogCompute);
    d->addAnalogArray(makeColumnArray("AdcArray", 320,
                                      makeColumnAdc({.bits = 3}),
                                      columnAdcArea, 320),
                      AnalogRole::Adc);

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("LogGradient", "LogArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"LogArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildSensors20()
{
    ChipInfo info;
    info.id = "Sensors'20";
    info.description =
        "110nm always-on analog-CNN sensor: 4T APS, column-parallel "
        "switched-capacitor MAC and max-pool";
    info.pixels = 160 * 120;

    DesignParams dp;
    dp.name = "sensors20-analogcnn";
    dp.fps = 10.0;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {160, 120, 1},
                              .bitDepth = 8});
    StageId conv = sw.addStage({.name = "ConvAnalog",
                                .op = StageOp::Conv2d,
                                .inputSize = {160, 120, 1},
                                .outputSize = {158, 118, 1},
                                .kernel = {3, 3, 1},
                                .stride = {1, 1, 1}});
    StageId pool = sw.addStage({.name = "MaxPoolAnalog",
                                .op = StageOp::MaxPool,
                                .inputSize = {158, 118, 1},
                                .outputSize = {79, 59, 1},
                                .kernel = {2, 2, 1},
                                .stride = {2, 2, 1}});
    sw.connect(in, conv);
    sw.connect(conv, pool);

    const NodeParams node = nodeParams(110);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 0.8e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 160, 120,
                                     makeAps4T(aps), 6.0, 1, 160),
                      AnalogRole::Sensing);

    SwitchedCapParams sc;
    sc.vdda = node.vdda;
    sc.bits = 6;
    sc.numCaps = 9;
    d->addAnalogArray(makeColumnArray("MacArray", 160,
                                      makeSwitchedCapMac(sc),
                                      analogPeArea, 160),
                      AnalogRole::AnalogCompute);
    d->addAnalogArray(makeColumnArray("MaxPoolArray", 160,
                                      makeMaxUnit(4), analogPeArea,
                                      160),
                      AnalogRole::AnalogCompute);
    d->addAnalogArray(makeColumnArray("AdcArray", 160,
                                      makeColumnAdc({.bits = 8}),
                                      columnAdcArea, 160),
                      AnalogRole::Adc);

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("ConvAnalog", "MacArray");
    m.map("MaxPoolAnalog", "MaxPoolArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray", "MaxPoolArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildIsscc21()
{
    ChipInfo info;
    info.id = "ISSCC'21";
    info.description =
        "Sony IMX500-class 65/22nm stacked 12.3Mpx CIS with on-chip "
        "DNN processor (8MB, 4.97 TOPS/W class)";
    info.pixels = static_cast<int64_t>(4056) * 3040;

    DesignParams dp;
    dp.name = "isscc21-imx500";
    dp.fps = 30.0;
    dp.digitalClock = 400e6;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {4056, 3040, 1},
                              .bitDepth = 10});
    StageId bin = sw.addStage({.name = "DownScale",
                               .op = StageOp::Binning,
                               .inputSize = {4056, 3040, 1},
                               .outputSize = {507, 380, 1},
                               .kernel = {8, 8, 1},
                               .stride = {8, 8, 1},
                               .bitDepth = 8});
    StageId c1 = sw.addStage({.name = "Conv1",
                              .op = StageOp::Conv2d,
                              .inputSize = {507, 380, 1},
                              .outputSize = {505, 378, 8},
                              .kernel = {3, 3, 1},
                              .stride = {1, 1, 1}});
    StageId c2 = sw.addStage({.name = "Conv2",
                              .op = StageOp::Conv2d,
                              .inputSize = {505, 378, 8},
                              .outputSize = {503, 376, 8},
                              .kernel = {3, 3, 8},
                              .stride = {1, 1, 1}});
    sw.connect(in, bin);
    sw.connect(bin, c1);
    sw.connect(c1, c2);

    const NodeParams node = nodeParams(65);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 2.0e-12; // tall column in a 12 Mpx array
    d->addAnalogArray(makePixelArray("PixelArray", 4056, 3040,
                                     makeAps4T(aps), 1.55, 1, 4056),
                      AnalogRole::Sensing);
    d->addAnalogArray(makeColumnArray("AdcArray", 4056,
                                      makeColumnAdc({.bits = 10}),
                                      columnAdcArea, 4056),
                      AnalogRole::Adc);

    // Stacked 22 nm logic die.
    d->addMemory(makeSramMemory("BinLineBuf", Layer::Compute,
                                MemoryKind::LineBuffer,
                                8 * 4056, 16, 22, 1.0));
    d->addMemory(makeSramMemory("Sram8M", Layer::Compute,
                                MemoryKind::DoubleBuffer,
                                8 * 1024 * 1024 / 16, 128, 22, 0.5));

    ComputeUnitParams bu;
    bu.name = "BinUnit";
    bu.layer = Layer::Compute;
    bu.inputPixelsPerCycle = {8, 8, 1};
    bu.outputPixelsPerCycle = {1, 1, 1};
    bu.energyPerCycle = 64.0 * aluEnergy16bit(22);
    bu.numStages = 3;
    bu.opsPerCycle = 64;
    d->addComputeUnit(ComputeUnit(bu));

    SystolicArrayParams sp;
    sp.name = "DnnArray";
    sp.layer = Layer::Compute;
    sp.rows = 48;
    sp.cols = 48;
    sp.energyPerMac = macEnergy8bit(22);
    sp.peArea = macArea8bit(22);
    d->addSystolicArray(SystolicArray(sp));

    d->setAdcOutput("BinLineBuf");
    d->connectMemoryToUnit("BinLineBuf", "BinUnit");
    d->connectUnitToMemory("BinUnit", "Sram8M");
    d->connectMemoryToUnit("Sram8M", "DnnArray");

    d->setMipi(makeMipiCsi2());
    d->setTsv(makeMicroTsv());
    d->setPipelineOutputBytes(16 * 1024); // metadata + thumbnail

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("DownScale", "BinUnit");
    m.map("Conv1", "DnnArray");
    m.map("Conv2", "DnnArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"BinUnit", "DnnArray"}},
        {"Memory", {"BinLineBuf", "Sram8M"}},
        {"I/O", {"MIPI-CSI2", "uTSV"}},
    };
    return info;
}

ChipInfo
buildJssc21I()
{
    ChipInfo info;
    info.id = "JSSC'21-I";
    info.description =
        "180nm 0.5V computational CIS: PWM pixels, time/current "
        "domain column MAC with programmable kernel";
    info.pixels = 128 * 128;

    DesignParams dp;
    dp.name = "jssc21i-pwm";
    dp.fps = 120.0;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {128, 128, 1},
                              .bitDepth = 8});
    StageId conv = sw.addStage({.name = "FeatureConv",
                                .op = StageOp::Conv2d,
                                .inputSize = {128, 128, 1},
                                .outputSize = {126, 126, 1},
                                .kernel = {3, 3, 1},
                                .stride = {1, 1, 1},
                                .bitDepth = 4});
    sw.connect(in, conv);

    ApsParams aps;
    aps.vdda = 0.5;
    aps.pixelSwing = 0.3;
    aps.columnLoadCap = 0.3e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 128, 128,
                                     makePwmPixel(aps), 10.0, 1, 128),
                      AnalogRole::Sensing);
    d->addAnalogArray(makeColumnArray("MacArray", 128,
                                      makeCurrentMac(0.5, 50e-15),
                                      analogPeArea, 128),
                      AnalogRole::AnalogCompute);
    d->addAnalogArray(makeColumnArray("AdcArray", 128,
                                      makeCurrentAdc(8),
                                      columnAdcArea, 128),
                      AnalogRole::Adc);

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("FeatureConv", "MacArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildJssc21II()
{
    ChipInfo info;
    info.id = "JSSC'21-II";
    info.description =
        "110nm 51pJ/px compressive CIS: 4T APS, column-parallel "
        "single-shot charge-domain compressive MAC (4x)";
    info.pixels = 640 * 480;

    DesignParams dp;
    dp.name = "jssc21ii-compressive";
    dp.fps = 30.0;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {640, 480, 1},
                              .bitDepth = 8});
    StageId cs = sw.addStage({.name = "CompressiveProjection",
                              .op = StageOp::Conv2d,
                              .inputSize = {640, 480, 1},
                              .outputSize = {320, 240, 1},
                              .kernel = {2, 2, 1},
                              .stride = {2, 2, 1}});
    sw.connect(in, cs);

    const NodeParams node = nodeParams(110);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 1.5e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 640, 480,
                                     makeAps4T(aps), 3.2, 1, 640),
                      AnalogRole::Sensing);

    SwitchedCapParams sc;
    sc.vdda = node.vdda;
    sc.unitCap = 150e-15;
    sc.numCaps = 4;
    sc.active = false; // passive charge redistribution
    d->addAnalogArray(makeColumnArray("MacArray", 640,
                                      makeSwitchedCapMac(sc),
                                      analogPeArea, 640),
                      AnalogRole::AnalogCompute);
    d->addAnalogArray(makeColumnArray("AdcArray", 320,
                                      makeColumnAdc({.bits = 10}),
                                      columnAdcArea, 320),
                      AnalogRole::Adc);

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("CompressiveProjection", "MacArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildVlsi21()
{
    ChipInfo info;
    info.id = "VLSI'21";
    info.description =
        "65/28nm stacked 2Mpx global-shutter CIS with pixel-level "
        "ADC (DPS) and in-pixel memory (116.2mW class)";
    info.pixels = static_cast<int64_t>(1632) * 1224;

    DesignParams dp;
    dp.name = "vlsi21-gs-dps";
    dp.fps = 120.0;
    dp.digitalClock = 200e6;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {1632, 1224, 1},
                              .bitDepth = 10});
    StageId ro = sw.addStage({.name = "Readout",
                              .op = StageOp::Identity,
                              .inputSize = {1632, 1224, 1},
                              .outputSize = {1632, 1224, 1},
                              .bitDepth = 10});
    sw.connect(in, ro);

    ApsParams aps;
    aps.vdda = nodeParams(65).vdda;
    aps.photodiodeCap = 4e-15;
    d->addAnalogArray(makePixelArray("DpsArray", 1632, 1224,
                                     makeDps(10, aps), 2.2, 1, 1632),
                      AnalogRole::Sensing);

    // Stacked 28 nm die holds the 6 MB frame memory; global shutter
    // storage cannot be power-gated during the frame.
    d->addMemory(makeSramMemory("FrameMem6M", Layer::Compute,
                                MemoryKind::FrameBuffer,
                                6 * 1024 * 1024 / 2, 16, 28, 1.0));
    ComputeUnitParams ru;
    ru.name = "ReadoutUnit";
    ru.layer = Layer::Compute;
    ru.inputPixelsPerCycle = {16, 1, 1};
    ru.outputPixelsPerCycle = {16, 1, 1};
    ru.energyPerCycle = 2.0 * aluEnergy16bit(28);
    ru.numStages = 2;
    ru.opsPerCycle = 0;
    d->addComputeUnit(ComputeUnit(ru));

    d->setAdcOutput("FrameMem6M");
    d->connectMemoryToUnit("FrameMem6M", "ReadoutUnit");

    d->setMipi(makeMipiCsi2());
    d->setTsv(makeMicroTsv());

    Mapping &m = d->mapping();
    m.map("Input", "DpsArray");
    m.map("Readout", "ReadoutUnit");

    info.design = d;
    info.groups = {
        {"Pixel+ADC", {"DpsArray"}},
        {"Digital PE", {"ReadoutUnit"}},
        {"Memory", {"FrameMem6M"}},
        {"I/O", {"MIPI-CSI2", "uTSV"}},
    };
    return info;
}

ChipInfo
buildIsscc22()
{
    ChipInfo info;
    info.id = "ISSCC'22";
    info.description =
        "180nm 0.8V intelligent vision sensor: PWM pixels, mixed-mode "
        "tiny CNN, 256B digital memory, single MAC PE";
    info.pixels = 160 * 120;

    DesignParams dp;
    dp.name = "isscc22-pis";
    dp.fps = 10.0;
    dp.digitalClock = 10e6;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {160, 120, 1},
                              .bitDepth = 8});
    StageId conv = sw.addStage({.name = "TinyConv",
                                .op = StageOp::Conv2d,
                                .inputSize = {160, 120, 1},
                                .outputSize = {158, 118, 1},
                                .kernel = {3, 3, 1},
                                .stride = {1, 1, 1},
                                .bitDepth = 4});
    StageId pool = sw.addStage({.name = "TinyPool",
                                .op = StageOp::MaxPool,
                                .inputSize = {158, 118, 1},
                                .outputSize = {79, 59, 1},
                                .kernel = {2, 2, 1},
                                .stride = {2, 2, 1},
                                .bitDepth = 4});
    StageId fc = sw.addStage({.name = "Classifier",
                              .op = StageOp::FullyConnected,
                              .inputSize = {79, 59, 1},
                              .outputSize = {10, 1, 1},
                              .bitDepth = 8});
    sw.connect(in, conv);
    sw.connect(conv, pool);
    sw.connect(pool, fc);

    ApsParams aps;
    aps.vdda = 0.8;
    aps.pixelSwing = 0.4;
    aps.columnLoadCap = 0.4e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 160, 120,
                                     makePwmPixel(aps), 7.0, 1, 160),
                      AnalogRole::Sensing);
    d->addAnalogArray(makeColumnArray("MacArray", 160,
                                      makeCurrentMac(0.8, 60e-15),
                                      analogPeArea, 160),
                      AnalogRole::AnalogCompute);
    {
        // Current-domain winner-take-all pooling (2x2 window).
        AComponent wta("I-WTA", SignalDomain::Current,
                       SignalDomain::Current);
        wta.addCell(std::make_shared<NonLinearCell>("wta-comparator", 1),
                    3, 1);
        d->addAnalogArray(makeColumnArray("PoolArray", 160, wta,
                                          analogPeArea, 160),
                          AnalogRole::AnalogCompute);
    }
    d->addAnalogArray(makeColumnArray("AdcArray", 160,
                                      makeCurrentAdc(4),
                                      columnAdcArea, 160),
                      AnalogRole::Adc);

    // 256 B register file plus one MAC PE for the classifier.
    {
        MemoryCharacteristics rf = regfileModel(256, 16, 180);
        DigitalMemoryParams mp;
        mp.name = "RegFile256";
        mp.layer = Layer::Sensor;
        mp.kind = MemoryKind::Fifo;
        mp.capacityWords = 128;
        mp.wordBits = 16;
        mp.readEnergyPerWord = rf.readEnergyPerWord;
        mp.writeEnergyPerWord = rf.writeEnergyPerWord;
        mp.leakagePower = rf.leakagePower;
        mp.area = rf.area;
        d->addMemory(DigitalMemory(mp));
    }
    ComputeUnitParams fu;
    fu.name = "MacPe";
    fu.layer = Layer::Sensor;
    fu.inputPixelsPerCycle = {1, 1, 1};
    fu.outputPixelsPerCycle = {1, 1, 1};
    fu.energyPerCycle = macEnergy8bit(180);
    fu.numStages = 2;
    fu.opsPerCycle = 1; // a single MAC: one cycle per multiply-add
    d->addComputeUnit(ComputeUnit(fu));

    d->setAdcOutput("RegFile256");
    d->connectMemoryToUnit("RegFile256", "MacPe");

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("TinyConv", "MacArray");
    m.map("TinyPool", "PoolArray");
    m.map("Classifier", "MacPe");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray", "PoolArray"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"MacPe"}},
        {"Memory", {"RegFile256"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo
buildTcas22()
{
    ChipInfo info;
    info.id = "TCAS-I'22";
    info.description =
        "180nm Senputing ultra-low-power always-on chip: 3T APS with "
        "current-domain multiply fused into pixels, chip-level add";
    info.pixels = 64 * 64;

    DesignParams dp;
    dp.name = "tcas22-senputing";
    dp.fps = 10.0;
    auto d = std::make_shared<Design>(dp);

    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {64, 64, 1},
                              .bitDepth = 8});
    StageId fc = sw.addStage({.name = "BnnLayer1",
                              .op = StageOp::FullyConnected,
                              .inputSize = {64, 64, 1},
                              .outputSize = {16, 1, 1},
                              .bitDepth = 1});
    sw.connect(in, fc);

    ApsParams aps;
    aps.vdda = 3.3;
    aps.pixelSwing = 0.5;
    aps.columnLoadCap = 0.5e-12;
    d->addAnalogArray(makePixelArray("PixelArray", 64, 64,
                                     makeAps3T(aps), 15.0, 1, 64),
                      AnalogRole::Sensing);

    // Pixel-level binary multiply + chip-level current summing.
    {
        AComponent mul("pixel-mul", SignalDomain::Voltage,
                       SignalDomain::Current);
        mul.addCell(std::make_shared<DynamicCell>(
                        "steer-cap",
                        std::vector<CapNode>{ { 10e-15, 0.5 } }),
                    1, 1);
        AnalogArrayParams ap;
        ap.name = "MulArray";
        ap.numComponents = {64, 64, 1};
        ap.inputShape = {1, 64, 1};
        ap.outputShape = {1, 64, 1};
        ap.componentArea = analogMemArea;
        d->addAnalogArray(AnalogArray(ap, mul),
                          AnalogRole::AnalogCompute);
    }
    {
        // 16 current-summing comparators digitize the BNN outputs;
        // each consumes a full 64-current column bundle.
        AnalogArrayParams ap;
        ap.name = "SumAdc";
        ap.numComponents = {16, 1, 1};
        ap.inputShape = {1, 64, 1};
        ap.outputShape = {1, 16, 1};
        ap.componentArea = columnAdcArea;
        d->addAnalogArray(AnalogArray(ap, makeCurrentAdc(1)),
                          AnalogRole::Adc);
    }

    d->setMipi(makeMipiCsi2());

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("BnnLayer1", "MulArray");

    info.design = d;
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MulArray"}},
        {"ADC", {"SumAdc"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

std::vector<ChipInfo>
buildAllChips()
{
    return {
        buildIsscc17(), buildJssc19(), buildSensors20(),
        buildIsscc21(), buildJssc21I(), buildJssc21II(),
        buildVlsi21(), buildIsscc22(), buildTcas22(),
    };
}

} // namespace camj
