#include "validation/chips.h"

#include "spec/builder.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj
{

namespace
{

/** Pixel-array helper: components = pixels / pixelsPerComponent. */
spec::AnalogArraySpec
pixelArray(const std::string &name, int64_t comp_w, int64_t comp_h,
           spec::ComponentSpec pixel, double pitch_um,
           int pixels_per_component, int64_t row_width)
{
    spec::AnalogArraySpec a;
    a.name = name;
    a.layer = Layer::Sensor;
    a.role = AnalogRole::Sensing;
    a.numComponents = {comp_w, comp_h, 1};
    a.inputShape = {1, row_width, 1};
    a.outputShape = {1, row_width, 1};
    a.componentArea = pitch_um * pitch_um * units::um2 *
                      pixels_per_component;
    a.component = std::move(pixel);
    return a;
}

/** Column-parallel helper for PE / memory / ADC arrays. */
spec::AnalogArraySpec
columnArray(const std::string &name, int64_t cols,
            spec::ComponentSpec comp, Area component_area,
            int64_t row_width, AnalogRole role)
{
    spec::AnalogArraySpec a;
    a.name = name;
    a.layer = Layer::Sensor;
    a.role = role;
    a.numComponents = {cols, 1, 1};
    a.inputShape = {1, row_width, 1};
    a.outputShape = {1, row_width, 1};
    a.componentArea = component_area;
    a.component = std::move(comp);
    return a;
}

/** Current-domain MAC used by the PWM-pixel chips (time in,
 *  current out): integration cap plus a bias branch. */
spec::ComponentSpec
currentMac(Voltage vdda, Capacitance integration_cap)
{
    spec::CustomComponentSpec mac;
    mac.name = "I-MAC";
    mac.input = SignalDomain::Time;
    mac.output = SignalDomain::Current;

    spec::CellSpec cap;
    cap.cls = spec::CellClass::Dynamic;
    cap.name = "integration-cap";
    cap.caps = { { integration_cap, 0.3 } };
    mac.cells.push_back(cap);

    spec::CellSpec bias;
    bias.cls = spec::CellClass::StaticBias;
    bias.name = "bias-branch";
    bias.bias.loadCapacitance = integration_cap;
    bias.bias.voltageSwing = 0.3;
    bias.bias.vdda = vdda;
    bias.bias.mode = BiasMode::DirectDrive;
    mac.cells.push_back(bias);

    spec::ComponentSpec c;
    c.kind = spec::ComponentKind::Custom;
    c.custom = std::move(mac);
    return c;
}

/** Current-input ADC (current-domain designs digitize directly). */
spec::ComponentSpec
currentAdc(int bits)
{
    spec::CustomComponentSpec adc;
    adc.name = "I-ADC";
    adc.input = SignalDomain::Current;
    adc.output = SignalDomain::Digital;

    spec::CellSpec cell;
    cell.cls = spec::CellClass::NonLinear;
    cell.name = "i-adc";
    cell.bits = bits;
    adc.cells.push_back(cell);

    spec::ComponentSpec c;
    c.kind = spec::ComponentKind::Custom;
    c.custom = std::move(adc);
    return c;
}

spec::ComponentSpec
columnAdc(int bits)
{
    spec::ComponentSpec c;
    c.kind = spec::ComponentKind::ColumnAdc;
    c.adc = {.bits = bits};
    return c;
}

constexpr Area columnAdcArea = 1.0e-9;   // pitch-matched column ADC
constexpr Area analogPeArea = 2.0e-10;   // switched-cap PE cell
constexpr Area analogMemArea = 1.0e-10;  // analog memory cell

} // namespace

ChipInfo
materializeChip(const ChipSpec &chip)
{
    ChipInfo info;
    info.id = chip.id;
    info.description = chip.description;
    info.pixels = chip.pixels;
    info.design =
        std::make_shared<Design>(chip.design.materialize());
    info.groups = chip.groups;
    return info;
}

ChipSpec
isscc17Spec()
{
    ChipSpec info;
    info.id = "ISSCC'17";
    info.description =
        "65nm CNN face-recognition CIS: 3T APS, analog average/add "
        "front-end, 20x80 analog memory, 160KB SRAM, MAC array";
    info.pixels = 320 * 240;

    spec::DesignBuilder b("isscc17-facerec");
    b.fps(10.0).digitalClock(50e6);

    // Algorithm: 4x4 analog binning (Haar front-end), analog feature
    // scaling, then a small two-layer CNN in the digital domain.
    b.inputStage("Input", {320, 240, 1})
        .stage({.name = "HaarBin",
                .op = StageOp::Binning,
                .inputSize = {320, 240, 1},
                .outputSize = {80, 60, 1},
                .kernel = {4, 4, 1},
                .stride = {4, 4, 1}},
               {"Input"})
        .stage({.name = "HaarFeature",
                .op = StageOp::Scale,
                .inputSize = {80, 60, 1},
                .outputSize = {80, 60, 1}},
               {"HaarBin"})
        .stage({.name = "Conv1",
                .op = StageOp::Conv2d,
                .inputSize = {80, 60, 1},
                .outputSize = {39, 29, 8},
                .kernel = {4, 4, 1},
                .stride = {2, 2, 1}},
               {"HaarFeature"})
        .stage({.name = "Conv2",
                .op = StageOp::Conv2d,
                .inputSize = {39, 29, 8},
                .outputSize = {19, 14, 16},
                .kernel = {3, 3, 8},
                .stride = {2, 2, 1}},
               {"Conv1"});

    // Analog chain.
    const NodeParams node = nodeParams(65);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps3T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 1.0e-12;
    pixel.aps.pixelsPerComponent = 16; // 4x4 charge-binning cluster
    b.analogArray(pixelArray("PixelArray", 80, 60, pixel, 7.0, 16, 80));

    spec::ComponentSpec scaler;
    scaler.kind = spec::ComponentKind::Scaler;
    scaler.sc.vdda = node.vdda;
    scaler.sc.bits = 6;
    b.analogArray(columnArray("HaarAddArray", 80, scaler, analogPeArea,
                              80, AnalogRole::AnalogCompute));

    spec::ComponentSpec mem;
    mem.kind = spec::ComponentKind::ActiveAnalogMemory;
    mem.analogMem.vdda = node.vdda;
    mem.analogMem.bits = 6;
    b.analogArray({.name = "AnalogMem",
                   .role = AnalogRole::AnalogMemory,
                   .numComponents = {80, 20, 1},
                   .inputShape = {1, 80, 1},
                   .outputShape = {1, 80, 1},
                   .componentArea = analogMemArea,
                   .component = mem});

    b.analogArray(columnArray("AdcArray", 80, columnAdc(10),
                              columnAdcArea, 80, AnalogRole::Adc));

    // Digital: 16x16 MAC array plus the 160 KB SRAM.
    // The chip power-collapses the CNN memory between face events;
    // only a small always-on fraction of the frame keeps it powered.
    b.sram("Sram160K", Layer::Sensor, MemoryKind::DoubleBuffer,
           160 * 1024 / 8, 64, 65, 0.12);
    b.systolicArray({.name = "CnnPe",
                     .layer = Layer::Sensor,
                     .rows = 16,
                     .cols = 16,
                     .energyPerMac = macEnergy8bit(65),
                     .peArea = macArea8bit(65)},
                    {"Sram160K"});
    b.adcOutput("Sram160K");

    b.mipi().pipelineOutputBytes(16); // face-detection result record

    b.map("Input", "PixelArray")
        .map("HaarBin", "PixelArray")
        .map("HaarFeature", "HaarAddArray")
        .map("Conv1", "CnnPe")
        .map("Conv2", "CnnPe");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"HaarAddArray"}},
        {"Analog Mem", {"AnalogMem"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"CnnPe"}},
        {"Memory", {"Sram160K"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
jssc19Spec()
{
    ChipSpec info;
    info.id = "JSSC'19";
    info.description =
        "130nm data-compressive log-gradient QVGA sensor: 4T APS, "
        "column logarithmic response, 2.75b multi-scale readout";
    info.pixels = 320 * 240;

    spec::DesignBuilder b("jssc19-loggrad");
    b.fps(30.0);

    b.inputStage("Input", {320, 240, 1})
        .stage({.name = "LogGradient",
                .op = StageOp::LogResponse,
                .inputSize = {320, 240, 1},
                .outputSize = {320, 240, 1},
                .bitDepth = 3},
               {"Input"});

    const NodeParams node = nodeParams(130);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 1.2e-12;
    b.analogArray(pixelArray("PixelArray", 320, 240, pixel, 5.0, 1,
                             320));

    spec::ComponentSpec log;
    log.kind = spec::ComponentKind::LogUnit;
    log.logLoadCap = 50e-15;
    log.logVdda = node.vdda;
    b.analogArray(columnArray("LogArray", 320, log, analogPeArea, 320,
                              AnalogRole::AnalogCompute));
    b.analogArray(columnArray("AdcArray", 320, columnAdc(3),
                              columnAdcArea, 320, AnalogRole::Adc));

    b.mipi();

    b.map("Input", "PixelArray").map("LogGradient", "LogArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"LogArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
sensors20Spec()
{
    ChipSpec info;
    info.id = "Sensors'20";
    info.description =
        "110nm always-on analog-CNN sensor: 4T APS, column-parallel "
        "switched-capacitor MAC and max-pool";
    info.pixels = 160 * 120;

    spec::DesignBuilder b("sensors20-analogcnn");
    b.fps(10.0);

    b.inputStage("Input", {160, 120, 1})
        .stage({.name = "ConvAnalog",
                .op = StageOp::Conv2d,
                .inputSize = {160, 120, 1},
                .outputSize = {158, 118, 1},
                .kernel = {3, 3, 1},
                .stride = {1, 1, 1}},
               {"Input"})
        .stage({.name = "MaxPoolAnalog",
                .op = StageOp::MaxPool,
                .inputSize = {158, 118, 1},
                .outputSize = {79, 59, 1},
                .kernel = {2, 2, 1},
                .stride = {2, 2, 1}},
               {"ConvAnalog"});

    const NodeParams node = nodeParams(110);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 0.8e-12;
    b.analogArray(pixelArray("PixelArray", 160, 120, pixel, 6.0, 1,
                             160));

    spec::ComponentSpec mac;
    mac.kind = spec::ComponentKind::SwitchedCapMac;
    mac.sc.vdda = node.vdda;
    mac.sc.bits = 6;
    mac.sc.numCaps = 9;
    b.analogArray(columnArray("MacArray", 160, mac, analogPeArea, 160,
                              AnalogRole::AnalogCompute));

    spec::ComponentSpec pool;
    pool.kind = spec::ComponentKind::MaxUnit;
    pool.maxInputs = 4;
    b.analogArray(columnArray("MaxPoolArray", 160, pool, analogPeArea,
                              160, AnalogRole::AnalogCompute));
    b.analogArray(columnArray("AdcArray", 160, columnAdc(8),
                              columnAdcArea, 160, AnalogRole::Adc));

    b.mipi();

    b.map("Input", "PixelArray")
        .map("ConvAnalog", "MacArray")
        .map("MaxPoolAnalog", "MaxPoolArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray", "MaxPoolArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
isscc21Spec()
{
    ChipSpec info;
    info.id = "ISSCC'21";
    info.description =
        "Sony IMX500-class 65/22nm stacked 12.3Mpx CIS with on-chip "
        "DNN processor (8MB, 4.97 TOPS/W class)";
    info.pixels = static_cast<int64_t>(4056) * 3040;

    spec::DesignBuilder b("isscc21-imx500");
    b.fps(30.0).digitalClock(400e6);

    b.inputStage("Input", {4056, 3040, 1}, 10)
        .stage({.name = "DownScale",
                .op = StageOp::Binning,
                .inputSize = {4056, 3040, 1},
                .outputSize = {507, 380, 1},
                .kernel = {8, 8, 1},
                .stride = {8, 8, 1},
                .bitDepth = 8},
               {"Input"})
        .stage({.name = "Conv1",
                .op = StageOp::Conv2d,
                .inputSize = {507, 380, 1},
                .outputSize = {505, 378, 8},
                .kernel = {3, 3, 1},
                .stride = {1, 1, 1}},
               {"DownScale"})
        .stage({.name = "Conv2",
                .op = StageOp::Conv2d,
                .inputSize = {505, 378, 8},
                .outputSize = {503, 376, 8},
                .kernel = {3, 3, 8},
                .stride = {1, 1, 1}},
               {"Conv1"});

    const NodeParams node = nodeParams(65);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 2.0e-12; // tall column in a 12 Mpx array
    b.analogArray(pixelArray("PixelArray", 4056, 3040, pixel, 1.55, 1,
                             4056));
    b.analogArray(columnArray("AdcArray", 4056, columnAdc(10),
                              columnAdcArea, 4056, AnalogRole::Adc));

    // Stacked 22 nm logic die.
    b.sram("BinLineBuf", Layer::Compute, MemoryKind::LineBuffer,
           8 * 4056, 16, 22, 1.0);
    b.sram("Sram8M", Layer::Compute, MemoryKind::DoubleBuffer,
           8 * 1024 * 1024 / 16, 128, 22, 0.5);

    ComputeUnitParams bu;
    bu.name = "BinUnit";
    bu.layer = Layer::Compute;
    bu.inputPixelsPerCycle = {8, 8, 1};
    bu.outputPixelsPerCycle = {1, 1, 1};
    bu.energyPerCycle = 64.0 * aluEnergy16bit(22);
    bu.numStages = 3;
    bu.opsPerCycle = 64;
    b.computeUnit(bu, {"BinLineBuf"}, {"Sram8M"});

    b.systolicArray({.name = "DnnArray",
                     .layer = Layer::Compute,
                     .rows = 48,
                     .cols = 48,
                     .energyPerMac = macEnergy8bit(22),
                     .peArea = macArea8bit(22)},
                    {"Sram8M"});

    b.adcOutput("BinLineBuf");

    b.mipi().tsv();
    b.pipelineOutputBytes(16 * 1024); // metadata + thumbnail

    b.map("Input", "PixelArray")
        .map("DownScale", "BinUnit")
        .map("Conv1", "DnnArray")
        .map("Conv2", "DnnArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"BinUnit", "DnnArray"}},
        {"Memory", {"BinLineBuf", "Sram8M"}},
        {"I/O", {"MIPI-CSI2", "uTSV"}},
    };
    return info;
}

ChipSpec
jssc21ISpec()
{
    ChipSpec info;
    info.id = "JSSC'21-I";
    info.description =
        "180nm 0.5V computational CIS: PWM pixels, time/current "
        "domain column MAC with programmable kernel";
    info.pixels = 128 * 128;

    spec::DesignBuilder b("jssc21i-pwm");
    b.fps(120.0);

    b.inputStage("Input", {128, 128, 1})
        .stage({.name = "FeatureConv",
                .op = StageOp::Conv2d,
                .inputSize = {128, 128, 1},
                .outputSize = {126, 126, 1},
                .kernel = {3, 3, 1},
                .stride = {1, 1, 1},
                .bitDepth = 4},
               {"Input"});

    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::PwmPixel;
    pixel.aps.vdda = 0.5;
    pixel.aps.pixelSwing = 0.3;
    pixel.aps.columnLoadCap = 0.3e-12;
    b.analogArray(pixelArray("PixelArray", 128, 128, pixel, 10.0, 1,
                             128));
    b.analogArray(columnArray("MacArray", 128,
                              currentMac(0.5, 50e-15), analogPeArea,
                              128, AnalogRole::AnalogCompute));
    b.analogArray(columnArray("AdcArray", 128, currentAdc(8),
                              columnAdcArea, 128, AnalogRole::Adc));

    b.mipi();

    b.map("Input", "PixelArray").map("FeatureConv", "MacArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
jssc21IISpec()
{
    ChipSpec info;
    info.id = "JSSC'21-II";
    info.description =
        "110nm 51pJ/px compressive CIS: 4T APS, column-parallel "
        "single-shot charge-domain compressive MAC (4x)";
    info.pixels = 640 * 480;

    spec::DesignBuilder b("jssc21ii-compressive");
    b.fps(30.0);

    b.inputStage("Input", {640, 480, 1})
        .stage({.name = "CompressiveProjection",
                .op = StageOp::Conv2d,
                .inputSize = {640, 480, 1},
                .outputSize = {320, 240, 1},
                .kernel = {2, 2, 1},
                .stride = {2, 2, 1}},
               {"Input"});

    const NodeParams node = nodeParams(110);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 1.5e-12;
    b.analogArray(pixelArray("PixelArray", 640, 480, pixel, 3.2, 1,
                             640));

    spec::ComponentSpec mac;
    mac.kind = spec::ComponentKind::SwitchedCapMac;
    mac.sc.vdda = node.vdda;
    mac.sc.unitCap = 150e-15;
    mac.sc.numCaps = 4;
    mac.sc.active = false; // passive charge redistribution
    b.analogArray(columnArray("MacArray", 640, mac, analogPeArea, 640,
                              AnalogRole::AnalogCompute));
    b.analogArray(columnArray("AdcArray", 320, columnAdc(10),
                              columnAdcArea, 320, AnalogRole::Adc));

    b.mipi();

    b.map("Input", "PixelArray")
        .map("CompressiveProjection", "MacArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray"}},
        {"ADC", {"AdcArray"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
vlsi21Spec()
{
    ChipSpec info;
    info.id = "VLSI'21";
    info.description =
        "65/28nm stacked 2Mpx global-shutter CIS with pixel-level "
        "ADC (DPS) and in-pixel memory (116.2mW class)";
    info.pixels = static_cast<int64_t>(1632) * 1224;

    spec::DesignBuilder b("vlsi21-gs-dps");
    b.fps(120.0).digitalClock(200e6);

    b.inputStage("Input", {1632, 1224, 1}, 10)
        .stage({.name = "Readout",
                .op = StageOp::Identity,
                .inputSize = {1632, 1224, 1},
                .outputSize = {1632, 1224, 1},
                .bitDepth = 10},
               {"Input"});

    spec::ComponentSpec dps;
    dps.kind = spec::ComponentKind::Dps;
    dps.aps.vdda = nodeParams(65).vdda;
    dps.aps.photodiodeCap = 4e-15;
    dps.adc = {.bits = 10};
    b.analogArray(pixelArray("DpsArray", 1632, 1224, dps, 2.2, 1,
                             1632));

    // Stacked 28 nm die holds the 6 MB frame memory; global shutter
    // storage cannot be power-gated during the frame.
    b.sram("FrameMem6M", Layer::Compute, MemoryKind::FrameBuffer,
           6 * 1024 * 1024 / 2, 16, 28, 1.0);
    ComputeUnitParams ru;
    ru.name = "ReadoutUnit";
    ru.layer = Layer::Compute;
    ru.inputPixelsPerCycle = {16, 1, 1};
    ru.outputPixelsPerCycle = {16, 1, 1};
    ru.energyPerCycle = 2.0 * aluEnergy16bit(28);
    ru.numStages = 2;
    ru.opsPerCycle = 0;
    b.computeUnit(ru, {"FrameMem6M"});

    b.adcOutput("FrameMem6M");

    b.mipi().tsv();

    b.map("Input", "DpsArray").map("Readout", "ReadoutUnit");

    info.design = b.spec();
    info.groups = {
        {"Pixel+ADC", {"DpsArray"}},
        {"Digital PE", {"ReadoutUnit"}},
        {"Memory", {"FrameMem6M"}},
        {"I/O", {"MIPI-CSI2", "uTSV"}},
    };
    return info;
}

ChipSpec
isscc22Spec()
{
    ChipSpec info;
    info.id = "ISSCC'22";
    info.description =
        "180nm 0.8V intelligent vision sensor: PWM pixels, mixed-mode "
        "tiny CNN, 256B digital memory, single MAC PE";
    info.pixels = 160 * 120;

    spec::DesignBuilder b("isscc22-pis");
    b.fps(10.0).digitalClock(10e6);

    b.inputStage("Input", {160, 120, 1})
        .stage({.name = "TinyConv",
                .op = StageOp::Conv2d,
                .inputSize = {160, 120, 1},
                .outputSize = {158, 118, 1},
                .kernel = {3, 3, 1},
                .stride = {1, 1, 1},
                .bitDepth = 4},
               {"Input"})
        .stage({.name = "TinyPool",
                .op = StageOp::MaxPool,
                .inputSize = {158, 118, 1},
                .outputSize = {79, 59, 1},
                .kernel = {2, 2, 1},
                .stride = {2, 2, 1},
                .bitDepth = 4},
               {"TinyConv"})
        .stage({.name = "Classifier",
                .op = StageOp::FullyConnected,
                .inputSize = {79, 59, 1},
                .outputSize = {10, 1, 1},
                .bitDepth = 8},
               {"TinyPool"});

    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::PwmPixel;
    pixel.aps.vdda = 0.8;
    pixel.aps.pixelSwing = 0.4;
    pixel.aps.columnLoadCap = 0.4e-12;
    b.analogArray(pixelArray("PixelArray", 160, 120, pixel, 7.0, 1,
                             160));
    b.analogArray(columnArray("MacArray", 160,
                              currentMac(0.8, 60e-15), analogPeArea,
                              160, AnalogRole::AnalogCompute));
    {
        // Current-domain winner-take-all pooling (2x2 window).
        spec::CustomComponentSpec wta;
        wta.name = "I-WTA";
        wta.input = SignalDomain::Current;
        wta.output = SignalDomain::Current;
        spec::CellSpec cmp;
        cmp.cls = spec::CellClass::NonLinear;
        cmp.name = "wta-comparator";
        cmp.bits = 1;
        cmp.spatial = 3;
        wta.cells.push_back(cmp);

        spec::ComponentSpec c;
        c.kind = spec::ComponentKind::Custom;
        c.custom = std::move(wta);
        b.analogArray(columnArray("PoolArray", 160, c, analogPeArea,
                                  160, AnalogRole::AnalogCompute));
    }
    b.analogArray(columnArray("AdcArray", 160, currentAdc(4),
                              columnAdcArea, 160, AnalogRole::Adc));

    // 256 B register file plus one MAC PE for the classifier.
    {
        spec::MemorySpec rf;
        rf.name = "RegFile256";
        rf.layer = Layer::Sensor;
        rf.kind = MemoryKind::Fifo;
        rf.model = spec::MemoryModel::Regfile;
        rf.capacityWords = 128;
        rf.wordBits = 16;
        rf.nodeNm = 180;
        b.memory(rf);
    }
    ComputeUnitParams fu;
    fu.name = "MacPe";
    fu.layer = Layer::Sensor;
    fu.inputPixelsPerCycle = {1, 1, 1};
    fu.outputPixelsPerCycle = {1, 1, 1};
    fu.energyPerCycle = macEnergy8bit(180);
    fu.numStages = 2;
    fu.opsPerCycle = 1; // a single MAC: one cycle per multiply-add
    b.computeUnit(fu, {"RegFile256"});

    b.adcOutput("RegFile256");

    b.mipi();

    b.map("Input", "PixelArray")
        .map("TinyConv", "MacArray")
        .map("TinyPool", "PoolArray")
        .map("Classifier", "MacPe");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MacArray", "PoolArray"}},
        {"ADC", {"AdcArray"}},
        {"Digital PE", {"MacPe"}},
        {"Memory", {"RegFile256"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipSpec
tcas22Spec()
{
    ChipSpec info;
    info.id = "TCAS-I'22";
    info.description =
        "180nm Senputing ultra-low-power always-on chip: 3T APS with "
        "current-domain multiply fused into pixels, chip-level add";
    info.pixels = 64 * 64;

    spec::DesignBuilder b("tcas22-senputing");
    b.fps(10.0);

    b.inputStage("Input", {64, 64, 1})
        .stage({.name = "BnnLayer1",
                .op = StageOp::FullyConnected,
                .inputSize = {64, 64, 1},
                .outputSize = {16, 1, 1},
                .bitDepth = 1},
               {"Input"});

    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps3T;
    pixel.aps.vdda = 3.3;
    pixel.aps.pixelSwing = 0.5;
    pixel.aps.columnLoadCap = 0.5e-12;
    b.analogArray(pixelArray("PixelArray", 64, 64, pixel, 15.0, 1,
                             64));

    // Pixel-level binary multiply + chip-level current summing.
    {
        spec::CustomComponentSpec mul;
        mul.name = "pixel-mul";
        mul.input = SignalDomain::Voltage;
        mul.output = SignalDomain::Current;
        spec::CellSpec steer;
        steer.cls = spec::CellClass::Dynamic;
        steer.name = "steer-cap";
        steer.caps = { { 10e-15, 0.5 } };
        mul.cells.push_back(steer);

        spec::ComponentSpec c;
        c.kind = spec::ComponentKind::Custom;
        c.custom = std::move(mul);
        b.analogArray({.name = "MulArray",
                       .role = AnalogRole::AnalogCompute,
                       .numComponents = {64, 64, 1},
                       .inputShape = {1, 64, 1},
                       .outputShape = {1, 64, 1},
                       .componentArea = analogMemArea,
                       .component = c});
    }
    {
        // 16 current-summing comparators digitize the BNN outputs;
        // each consumes a full 64-current column bundle.
        b.analogArray({.name = "SumAdc",
                       .role = AnalogRole::Adc,
                       .numComponents = {16, 1, 1},
                       .inputShape = {1, 64, 1},
                       .outputShape = {1, 16, 1},
                       .componentArea = columnAdcArea,
                       .component = currentAdc(1)});
    }

    b.mipi();

    b.map("Input", "PixelArray").map("BnnLayer1", "MulArray");

    info.design = b.spec();
    info.groups = {
        {"Pixel", {"PixelArray"}},
        {"Analog PE", {"MulArray"}},
        {"ADC", {"SumAdc"}},
        {"I/O", {"MIPI-CSI2"}},
    };
    return info;
}

ChipInfo buildIsscc17() { return materializeChip(isscc17Spec()); }
ChipInfo buildJssc19() { return materializeChip(jssc19Spec()); }
ChipInfo buildSensors20() { return materializeChip(sensors20Spec()); }
ChipInfo buildIsscc21() { return materializeChip(isscc21Spec()); }
ChipInfo buildJssc21I() { return materializeChip(jssc21ISpec()); }
ChipInfo buildJssc21II() { return materializeChip(jssc21IISpec()); }
ChipInfo buildVlsi21() { return materializeChip(vlsi21Spec()); }
ChipInfo buildIsscc22() { return materializeChip(isscc22Spec()); }
ChipInfo buildTcas22() { return materializeChip(tcas22Spec()); }

std::vector<ChipSpec>
allChipSpecs()
{
    return {
        isscc17Spec(), jssc19Spec(), sensors20Spec(),
        isscc21Spec(), jssc21ISpec(), jssc21IISpec(),
        vlsi21Spec(), isscc22Spec(), tcas22Spec(),
    };
}

std::vector<ChipInfo>
buildAllChips()
{
    std::vector<ChipInfo> chips;
    chips.reserve(9);
    for (const ChipSpec &spec : allChipSpecs())
        chips.push_back(materializeChip(spec));
    return chips;
}

} // namespace camj
