/**
 * @file
 * The nine validation chip configurations of Table 2 / Fig. 7,
 * expressed as CamJ designs. Every chip is reconstructed from the
 * parameters the paper tabulates (process node, stacking, pixel type,
 * analog/digital PE style and memory sizes) plus educated-guess
 * workload proxies where the paper gives none (see DESIGN.md Sec. 3).
 *
 * Each chip is defined as a DesignSpec generator (isscc17Spec(), ...)
 * returning a fully serializable ChipSpec; the buildXxx() functions
 * are thin wrappers that materialize the spec onto the Design engine
 * for callers that want the imperative object.
 */

#ifndef CAMJ_VALIDATION_CHIPS_H
#define CAMJ_VALIDATION_CHIPS_H

#include <memory>
#include <string>
#include <vector>

#include "core/design.h"
#include "spec/spec.h"

namespace camj
{

/** One component-group row of a Fig. 7 per-chip breakdown. */
struct ChipGroup
{
    /** Display label ("Pixel", "ADC", "Analog PE", ...). */
    std::string label;
    /** Hardware unit names aggregated under the label. */
    std::vector<std::string> unitNames;
};

/** A validation chip as data: spec plus reporting metadata. */
struct ChipSpec
{
    /** Short id as used in Table 2 ("ISSCC'17"). */
    std::string id;
    /** One-line description. */
    std::string description;
    /** Pixel count used for the energy-per-pixel figure of merit. */
    int64_t pixels = 0;
    /** The serializable design document. */
    spec::DesignSpec design;
    /** Fig. 7 breakdown grouping. */
    std::vector<ChipGroup> groups;
};

/** A validation chip: materialized design plus reporting metadata. */
struct ChipInfo
{
    std::string id;
    std::string description;
    int64_t pixels = 0;
    /** The full CamJ design. */
    std::shared_ptr<Design> design;
    /** Fig. 7 breakdown grouping. */
    std::vector<ChipGroup> groups;
};

/** Materialize a chip spec onto the Design engine. */
ChipInfo materializeChip(const ChipSpec &chip);

/** ISSCC'17: 65 nm CNN face-recognition CIS, 3T APS, analog
 *  average/add, 160 KB SRAM, 4x4x64 MAC array. */
ChipSpec isscc17Spec();
ChipInfo buildIsscc17();

/** JSSC'19: 130 nm data-compressive log-gradient QVGA sensor,
 *  4T APS, column logarithmic subtraction, 2.75 b readout. */
ChipSpec jssc19Spec();
ChipInfo buildJssc19();

/** Sensors'20: 110 nm always-on analog CNN sensor, 4T APS, column
 *  MAC + max-pool. */
ChipSpec sensors20Spec();
ChipInfo buildSensors20();

/** ISSCC'21: Sony IMX500-class 65/22 nm stacked 12.3 Mpx CIS with
 *  on-chip DNN processor and 8 MB memory. */
ChipSpec isscc21Spec();
ChipInfo buildIsscc21();

/** JSSC'21-I: 180 nm 0.5 V computational CIS, PWM pixels,
 *  time/current-domain column MAC. */
ChipSpec jssc21ISpec();
ChipInfo buildJssc21I();

/** JSSC'21-II: 110 nm 51 pJ/px compressive CIS, 4T APS,
 *  column-parallel charge-domain MAC. */
ChipSpec jssc21IISpec();
ChipInfo buildJssc21II();

/** VLSI'21: 65/28 nm stacked 2 Mpx global-shutter sensor with
 *  pixel-level ADC (DPS) and 6 MB in-pixel/frame memory. */
ChipSpec vlsi21Spec();
ChipInfo buildVlsi21();

/** ISSCC'22: 180 nm 0.8 V intelligent vision sensor, PWM pixels,
 *  mixed-mode tiny CNN, 256 B digital memory, single MAC PE. */
ChipSpec isscc22Spec();
ChipInfo buildIsscc22();

/** TCAS-I'22: 180 nm Senputing chip, 3T APS, current-domain
 *  multiply/add fused into pixel and chip levels. */
ChipSpec tcas22Spec();
ChipInfo buildTcas22();

/** All nine chip specs in Table 2 order. */
std::vector<ChipSpec> allChipSpecs();

/** All nine chips in Table 2 order, materialized. */
std::vector<ChipInfo> buildAllChips();

} // namespace camj

#endif // CAMJ_VALIDATION_CHIPS_H
