/**
 * @file
 * The Fig. 7 validation harness: runs all nine chip designs, folds
 * per-unit energies into the per-chip component groups, and computes
 * the two headline statistics of Sec. 5 — Pearson correlation and
 * Mean Absolute Percentage Error against the reconstructed reported
 * values.
 */

#ifndef CAMJ_VALIDATION_HARNESS_H
#define CAMJ_VALIDATION_HARNESS_H

#include <string>
#include <vector>

#include "core/report.h"
#include "validation/chips.h"

namespace camj
{

/** One component-group comparison row (Fig. 7b-7j bars). */
struct GroupComparison
{
    std::string label;
    double estimatedPJPerPixel = 0.0;
    double reportedPJPerPixel = 0.0;
};

/** Validation result of one chip. */
struct ChipValidation
{
    std::string id;
    int64_t pixels = 0;
    double estimatedPJPerPixel = 0.0;
    double reportedPJPerPixel = 0.0;
    std::vector<GroupComparison> groups;
    /** The underlying full report, for drill-down. */
    EnergyReport report;
};

/** Fig. 7a summary over all chips. */
struct ValidationSummary
{
    std::vector<ChipValidation> chips;
    /** Pearson correlation of estimated vs reported totals. */
    double pearson = 0.0;
    /** MAPE of totals, as a percentage. */
    double mapePct = 0.0;
};

/**
 * Simulate one chip and fold its unit energies into the Fig. 7
 * component groups [pJ/px].
 */
ChipValidation validateChip(const ChipInfo &chip);

/** Materialize and validate a chip spec. */
ChipValidation validateChip(const ChipSpec &chip);

/**
 * Run the full nine-chip validation — materializing every chip from
 * its serializable spec — and compute the Fig. 7a statistics against
 * the reconstructed reported values.
 *
 * @throws ConfigError if any design fails its checks.
 */
ValidationSummary runValidation();

} // namespace camj

#endif // CAMJ_VALIDATION_HARNESS_H
