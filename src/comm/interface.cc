#include "comm/interface.h"

#include "common/logging.h"

namespace camj
{

const char *
commKindName(CommKind kind)
{
    switch (kind) {
      case CommKind::MipiCsi2: return "MIPI-CSI2";
      case CommKind::MicroTsv: return "uTSV";
    }
    return "?";
}

CommInterface::CommInterface(std::string name, CommKind kind,
                             Energy energy_per_byte)
    : name_(std::move(name)), kind_(kind),
      energyPerByte_(energy_per_byte)
{
    if (name_.empty())
        fatal("CommInterface: empty name");
    if (energyPerByte_ <= 0.0)
        fatal("CommInterface %s: energy per byte must be positive",
              name_.c_str());
}

Energy
CommInterface::energyForBytes(int64_t bytes) const
{
    if (bytes < 0)
        fatal("CommInterface %s: negative byte count", name_.c_str());
    return energyPerByte_ * static_cast<double>(bytes);
}

CommInterface
makeMipiCsi2(Energy energy_per_byte)
{
    return CommInterface("MIPI-CSI2", CommKind::MipiCsi2,
                         energy_per_byte);
}

CommInterface
makeMicroTsv(Energy energy_per_byte)
{
    return CommInterface("uTSV", CommKind::MicroTsv, energy_per_byte);
}

} // namespace camj
