/**
 * @file
 * Communication interfaces (Sec. 4.4, Eq. 17): the MIPI CSI-2 link
 * that carries data out of the sensor package (~100 pJ/B) and the
 * micro through-silicon vias between stacked dies (~1 pJ/B). Both
 * are characterized by an energy per byte, with defaults from the
 * Meta AR/VR system papers the CamJ paper cites.
 */

#ifndef CAMJ_COMM_INTERFACE_H
#define CAMJ_COMM_INTERFACE_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace camj
{

/** Kind of communication link. */
enum class CommKind
{
    /** MIPI CSI-2: sensor package to host SoC. */
    MipiCsi2,
    /** Micro-TSV / hybrid bond between stacked dies. */
    MicroTsv,
};

/** Human-readable kind name. */
const char *commKindName(CommKind kind);

/** Default energy per byte of MIPI CSI-2 [J/B] (Liu et al., ISSCC'22). */
constexpr Energy mipiDefaultEnergyPerByte = 100e-12;

/** Default energy per byte of a uTSV crossing [J/B]. */
constexpr Energy tsvDefaultEnergyPerByte = 1e-12;

/** A point-to-point communication link. */
class CommInterface
{
  public:
    /**
     * @param energy_per_byte Transfer energy [J/B]; must be positive.
     * @throws ConfigError on invalid parameters.
     */
    CommInterface(std::string name, CommKind kind,
                  Energy energy_per_byte);

    const std::string &name() const { return name_; }
    CommKind kind() const { return kind_; }
    Energy energyPerByte() const { return energyPerByte_; }

    /**
     * Eq. 17 contribution: energy to move @p bytes across this link.
     *
     * @throws ConfigError on negative byte counts.
     */
    Energy energyForBytes(int64_t bytes) const;

  private:
    std::string name_;
    CommKind kind_;
    Energy energyPerByte_;
};

/** MIPI CSI-2 link with the surveyed default energy. */
CommInterface makeMipiCsi2(Energy energy_per_byte =
                               mipiDefaultEnergyPerByte);

/** uTSV link with the surveyed default energy. */
CommInterface makeMicroTsv(Energy energy_per_byte =
                               tsvDefaultEnergyPerByte);

} // namespace camj

#endif // CAMJ_COMM_INTERFACE_H
