/**
 * @file
 * Algorithm stages: the nodes of the software DAG.
 *
 * Following Sec. 3.3 of the paper, an algorithm is described *without*
 * arithmetic detail: every stage is a stencil operation characterized
 * by its input/output image dimensions, stencil window (kernel) and
 * stride. From these CamJ derives operation and access counts
 * analytically; src/functional cross-checks the formulas by actually
 * executing the stages on pixel buffers.
 */

#ifndef CAMJ_SW_STAGE_H
#define CAMJ_SW_STAGE_H

#include <cstdint>
#include <string>

#include "common/shape.h"

namespace camj
{

/** The kinds of stencil operations the algorithm DAG can express. */
enum class StageOp
{
    /** Raw pixel source (the paper's PixelInput). */
    Input,
    /** Average pooling over non-overlapping tiles ("pixel binning"). */
    Binning,
    /** 2D convolution; kernel = [kw, kh, cin], one output channel set. */
    Conv2d,
    /** Depthwise 2D convolution. */
    DepthwiseConv2d,
    /** Fully-connected layer; every output reads every input. */
    FullyConnected,
    /** Max pooling. */
    MaxPool,
    /** Average pooling. */
    AvgPool,
    /** Two-input elementwise subtraction. */
    ElementwiseSub,
    /** Two-input elementwise addition. */
    ElementwiseAdd,
    /** Two-input elementwise absolute difference. */
    AbsDiff,
    /** One-input thresholding / comparison against a constant. */
    Threshold,
    /** One-input scaling by a constant. */
    Scale,
    /** One-input logarithmic response. */
    LogResponse,
    /** One-input absolute value. */
    Absolute,
    /**
     * Region-of-interest encoder in the style of Rhythmic Pixel
     * Regions' Compare & Sample unit: per-pixel compare plus
     * bookkeeping; ops per output configurable via
     * StageParams::opsPerOutputOverride.
     */
    CompareSample,
    /** Pure data movement (readout, reformat). */
    Identity,
};

/** Human-readable name of a StageOp. */
const char *stageOpName(StageOp op);

/** Number of image inputs a StageOp consumes (1 or 2). */
int stageOpArity(StageOp op);

/** True for ops whose output shape follows the stencil formula. */
bool stageOpIsStencil(StageOp op);

/** Construction parameters for Stage. */
struct StageParams
{
    std::string name;
    StageOp op = StageOp::Identity;
    /** Primary input dimensions (ignored for Input stages). */
    Shape inputSize;
    /** Output dimensions. */
    Shape outputSize;
    /** Stencil window; meaningful for stencil ops. */
    Shape kernel = {1, 1, 1};
    /** Stencil stride; meaningful for stencil ops. */
    Shape stride = {1, 1, 1};
    /** Data resolution in bits (pixel/activation precision). */
    int bitDepth = 8;
    /**
     * Override the per-output operation count for ops with
     * workload-specific cost (CompareSample). 0 keeps the default.
     */
    int64_t opsPerOutputOverride = 0;
};

/**
 * One node of the algorithm DAG. Immutable after construction; graph
 * wiring lives in SwGraph.
 */
class Stage
{
  public:
    /**
     * Validate and build a stage.
     *
     * @throws ConfigError if shapes are invalid or inconsistent with
     *         the stencil formula for stencil ops.
     */
    explicit Stage(StageParams params);

    const std::string &name() const { return params_.name; }
    StageOp op() const { return params_.op; }
    const Shape &inputSize() const { return params_.inputSize; }
    const Shape &outputSize() const { return params_.outputSize; }
    const Shape &kernel() const { return params_.kernel; }
    const Shape &stride() const { return params_.stride; }
    int bitDepth() const { return params_.bitDepth; }

    /** Number of image inputs (1, or 2 for elementwise two-input ops;
     *  0 for Input stages). */
    int numInputs() const;

    /** Number of output elements produced per frame. */
    int64_t outputsPerFrame() const;

    /** Arithmetic operations per output element. */
    int64_t opsPerOutput() const;

    /** Total arithmetic operations per frame (Eq. 3 numerator). */
    int64_t opsPerFrame() const;

    /**
     * Input element reads per frame assuming no inter-window reuse
     * (every stencil application reads its full window).
     */
    int64_t inputReadsPerFrame() const;

    /**
     * Distinct input elements touched per frame (ideal reuse, e.g.
     * through a line buffer each input is fetched once).
     */
    int64_t uniqueInputsPerFrame() const;

    /** Output bytes per frame at this stage's bit depth. */
    int64_t outputBytesPerFrame() const;

  private:
    StageParams params_;
};

} // namespace camj

#endif // CAMJ_SW_STAGE_H
