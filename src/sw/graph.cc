#include "sw/graph.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace camj
{

StageId
SwGraph::addStage(StageParams params)
{
    for (const auto &s : stages_) {
        if (s.name() == params.name)
            fatal("SwGraph: duplicate stage name '%s'",
                  params.name.c_str());
    }
    stages_.emplace_back(std::move(params));
    inEdges_.emplace_back();
    outEdges_.emplace_back();
    return static_cast<StageId>(stages_.size()) - 1;
}

void
SwGraph::checkId(StageId id, const char *who) const
{
    if (id < 0 || id >= size())
        fatal("SwGraph::%s: invalid stage id %d", who, id);
}

void
SwGraph::connect(StageId producer, StageId consumer)
{
    checkId(producer, "connect");
    checkId(consumer, "connect");
    if (producer == consumer)
        fatal("SwGraph: self-loop on stage '%s'",
              stages_[producer].name().c_str());

    auto &ins = inEdges_[consumer];
    if (std::find(ins.begin(), ins.end(), producer) != ins.end())
        fatal("SwGraph: duplicate edge %s -> %s",
              stages_[producer].name().c_str(),
              stages_[consumer].name().c_str());

    int arity = stages_[consumer].numInputs();
    if (static_cast<int>(ins.size()) >= arity)
        fatal("SwGraph: stage '%s' (%s) accepts %d input(s); extra "
              "edge from '%s'", stages_[consumer].name().c_str(),
              stageOpName(stages_[consumer].op()), arity,
              stages_[producer].name().c_str());

    ins.push_back(producer);
    outEdges_[producer].push_back(consumer);
}

const Stage &
SwGraph::stage(StageId id) const
{
    checkId(id, "stage");
    return stages_[id];
}

StageId
SwGraph::findStage(const std::string &name) const
{
    for (StageId i = 0; i < size(); ++i) {
        if (stages_[i].name() == name)
            return i;
    }
    fatal("SwGraph: no stage named '%s'", name.c_str());
}

const std::vector<StageId> &
SwGraph::inputsOf(StageId id) const
{
    checkId(id, "inputsOf");
    return inEdges_[id];
}

const std::vector<StageId> &
SwGraph::outputsOf(StageId id) const
{
    checkId(id, "outputsOf");
    return outEdges_[id];
}

std::vector<StageId>
SwGraph::sinks() const
{
    std::vector<StageId> result;
    for (StageId i = 0; i < size(); ++i) {
        if (outEdges_[i].empty())
            result.push_back(i);
    }
    return result;
}

std::vector<StageId>
SwGraph::inputs() const
{
    std::vector<StageId> result;
    for (StageId i = 0; i < size(); ++i) {
        if (stages_[i].op() == StageOp::Input)
            result.push_back(i);
    }
    return result;
}

std::vector<StageId>
SwGraph::topoOrder() const
{
    std::vector<int> indegree(stages_.size());
    for (StageId i = 0; i < size(); ++i)
        indegree[i] = static_cast<int>(inEdges_[i].size());

    std::queue<StageId> ready;
    for (StageId i = 0; i < size(); ++i) {
        if (indegree[i] == 0)
            ready.push(i);
    }

    std::vector<StageId> order;
    order.reserve(stages_.size());
    while (!ready.empty()) {
        StageId id = ready.front();
        ready.pop();
        order.push_back(id);
        for (StageId next : outEdges_[id]) {
            if (--indegree[next] == 0)
                ready.push(next);
        }
    }

    if (order.size() != stages_.size())
        fatal("SwGraph: cycle detected (%zu of %zu stages orderable)",
              order.size(), stages_.size());
    return order;
}

void
SwGraph::validate() const
{
    if (stages_.empty())
        fatal("SwGraph: empty graph");
    if (inputs().empty())
        fatal("SwGraph: no Input stage");

    for (StageId i = 0; i < size(); ++i) {
        const Stage &s = stages_[i];
        int want = s.numInputs();
        int have = static_cast<int>(inEdges_[i].size());
        if (have != want) {
            fatal("SwGraph: stage '%s' (%s) needs %d input(s), has %d",
                  s.name().c_str(), stageOpName(s.op()), want, have);
        }
        for (StageId producer : inEdges_[i]) {
            const Stage &p = stages_[producer];
            if (p.outputSize() != s.inputSize()) {
                fatal("SwGraph: shape mismatch on edge %s (%s) -> %s "
                      "(expects %s)", p.name().c_str(),
                      p.outputSize().str().c_str(), s.name().c_str(),
                      s.inputSize().str().c_str());
            }
        }
    }

    // Acyclicity (throws on failure).
    topoOrder();
}

int64_t
SwGraph::totalOpsPerFrame() const
{
    int64_t total = 0;
    for (const auto &s : stages_)
        total += s.opsPerFrame();
    return total;
}

} // namespace camj
