/**
 * @file
 * The algorithm DAG: stages plus producer/consumer edges, with the
 * well-formedness checks the paper's "pre-simulation check" performs
 * on the software side (acyclicity, arity, shape compatibility).
 */

#ifndef CAMJ_SW_GRAPH_H
#define CAMJ_SW_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "sw/stage.h"

namespace camj
{

/** Stage handle inside a SwGraph. */
using StageId = int;

/**
 * A directed acyclic graph of algorithm stages.
 *
 * Mirrors the paper's camj_sw_config(): stages are added, then wired
 * with connect() (the set_input_stage of the Python interface).
 */
class SwGraph
{
  public:
    /**
     * Add a stage.
     *
     * @return Handle used for wiring and queries.
     * @throws ConfigError on duplicate stage names.
     */
    StageId addStage(StageParams params);

    /**
     * Declare @p producer as an input of @p consumer. Order of
     * connect() calls defines operand order for two-input stages.
     *
     * @throws ConfigError on invalid ids, duplicate edges, or arity
     *         overflow.
     */
    void connect(StageId producer, StageId consumer);

    /** Number of stages. */
    int size() const { return static_cast<int>(stages_.size()); }

    /** Stage by handle. */
    const Stage &stage(StageId id) const;

    /** Stage handle by name. @throws ConfigError if absent. */
    StageId findStage(const std::string &name) const;

    /** Producers of @p id in operand order. */
    const std::vector<StageId> &inputsOf(StageId id) const;

    /** Consumers of @p id. */
    const std::vector<StageId> &outputsOf(StageId id) const;

    /** Stages with no consumers (the DAG sinks / MIPI boundary). */
    std::vector<StageId> sinks() const;

    /** Stages with op == Input. */
    std::vector<StageId> inputs() const;

    /**
     * Topological order of the DAG.
     *
     * @throws ConfigError if the graph contains a cycle.
     */
    std::vector<StageId> topoOrder() const;

    /**
     * Full well-formedness check: at least one Input stage, every
     * stage has exactly its arity of producers, producer output shapes
     * match consumer input shapes, the graph is acyclic, and every
     * non-sink output is consumed.
     *
     * @throws ConfigError describing the first violation found.
     */
    void validate() const;

    /** Sum of opsPerFrame over all stages. */
    int64_t totalOpsPerFrame() const;

  private:
    std::vector<Stage> stages_;
    std::vector<std::vector<StageId>> inEdges_;
    std::vector<std::vector<StageId>> outEdges_;

    void checkId(StageId id, const char *who) const;
};

} // namespace camj

#endif // CAMJ_SW_GRAPH_H
