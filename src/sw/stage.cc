#include "sw/stage.h"

#include "common/logging.h"

namespace camj
{

const char *
stageOpName(StageOp op)
{
    switch (op) {
      case StageOp::Input: return "Input";
      case StageOp::Binning: return "Binning";
      case StageOp::Conv2d: return "Conv2d";
      case StageOp::DepthwiseConv2d: return "DepthwiseConv2d";
      case StageOp::FullyConnected: return "FullyConnected";
      case StageOp::MaxPool: return "MaxPool";
      case StageOp::AvgPool: return "AvgPool";
      case StageOp::ElementwiseSub: return "ElementwiseSub";
      case StageOp::ElementwiseAdd: return "ElementwiseAdd";
      case StageOp::AbsDiff: return "AbsDiff";
      case StageOp::Threshold: return "Threshold";
      case StageOp::Scale: return "Scale";
      case StageOp::LogResponse: return "LogResponse";
      case StageOp::Absolute: return "Absolute";
      case StageOp::CompareSample: return "CompareSample";
      case StageOp::Identity: return "Identity";
    }
    panic("stageOpName: unknown op %d", static_cast<int>(op));
}

int
stageOpArity(StageOp op)
{
    switch (op) {
      case StageOp::Input:
        return 0;
      case StageOp::ElementwiseSub:
      case StageOp::ElementwiseAdd:
      case StageOp::AbsDiff:
        return 2;
      default:
        return 1;
    }
}

bool
stageOpIsStencil(StageOp op)
{
    switch (op) {
      case StageOp::Binning:
      case StageOp::Conv2d:
      case StageOp::DepthwiseConv2d:
      case StageOp::MaxPool:
      case StageOp::AvgPool:
        return true;
      default:
        return false;
    }
}

Stage::Stage(StageParams params)
    : params_(std::move(params))
{
    const StageParams &p = params_;
    if (p.name.empty())
        fatal("Stage: empty name");
    if (!p.outputSize.valid())
        fatal("Stage %s: invalid output size %s", p.name.c_str(),
              p.outputSize.str().c_str());
    if (p.bitDepth < 1 || p.bitDepth > 32)
        fatal("Stage %s: bit depth %d outside [1, 32]", p.name.c_str(),
              p.bitDepth);
    if (p.opsPerOutputOverride < 0)
        fatal("Stage %s: negative ops-per-output override",
              p.name.c_str());

    if (p.op == StageOp::Input)
        return;

    if (!p.inputSize.valid())
        fatal("Stage %s: invalid input size %s", p.name.c_str(),
              p.inputSize.str().c_str());

    if (stageOpIsStencil(p.op)) {
        if (!p.kernel.valid() || !p.stride.valid())
            fatal("Stage %s: invalid kernel/stride", p.name.c_str());
        // Depthwise and pooling preserve the channel count; plain
        // convolution reduces kernel.channels input channels into each
        // output channel. Spatial dims must obey the stencil formula.
        int64_t ow = stencilOutputExtent(p.inputSize.width,
                                         p.kernel.width, p.stride.width);
        int64_t oh = stencilOutputExtent(p.inputSize.height,
                                         p.kernel.height, p.stride.height);
        if (ow != p.outputSize.width || oh != p.outputSize.height) {
            fatal("Stage %s: output %s inconsistent with stencil of "
                  "input %s kernel %s stride %s (expect %lldx%lld "
                  "spatially)",
                  p.name.c_str(), p.outputSize.str().c_str(),
                  p.inputSize.str().c_str(), p.kernel.str().c_str(),
                  p.stride.str().c_str(), static_cast<long long>(ow),
                  static_cast<long long>(oh));
        }
        if (p.op == StageOp::Conv2d &&
            p.kernel.channels != p.inputSize.channels) {
            fatal("Stage %s: conv kernel depth %lld != input channels "
                  "%lld", p.name.c_str(),
                  static_cast<long long>(p.kernel.channels),
                  static_cast<long long>(p.inputSize.channels));
        }
        if ((p.op == StageOp::DepthwiseConv2d ||
             p.op == StageOp::MaxPool || p.op == StageOp::AvgPool ||
             p.op == StageOp::Binning) &&
            p.outputSize.channels != p.inputSize.channels) {
            fatal("Stage %s: %s must preserve channels (%lld -> %lld)",
                  p.name.c_str(), stageOpName(p.op),
                  static_cast<long long>(p.inputSize.channels),
                  static_cast<long long>(p.outputSize.channels));
        }
    } else if (stageOpArity(p.op) >= 1 && p.op != StageOp::FullyConnected &&
               p.op != StageOp::CompareSample) {
        // Elementwise and unary ops preserve the shape.
        if (p.inputSize != p.outputSize)
            fatal("Stage %s: %s requires equal input/output shapes "
                  "(%s vs %s)", p.name.c_str(), stageOpName(p.op),
                  p.inputSize.str().c_str(), p.outputSize.str().c_str());
    }
}

int
Stage::numInputs() const
{
    return stageOpArity(params_.op);
}

int64_t
Stage::outputsPerFrame() const
{
    return params_.outputSize.count();
}

int64_t
Stage::opsPerOutput() const
{
    if (params_.opsPerOutputOverride > 0)
        return params_.opsPerOutputOverride;

    switch (params_.op) {
      case StageOp::Input:
      case StageOp::Identity:
        return 0;
      case StageOp::Binning:
      case StageOp::AvgPool:
      case StageOp::MaxPool:
      case StageOp::DepthwiseConv2d:
        return params_.kernel.width * params_.kernel.height;
      case StageOp::Conv2d:
        return params_.kernel.count();
      case StageOp::FullyConnected:
        return params_.inputSize.count();
      case StageOp::ElementwiseSub:
      case StageOp::ElementwiseAdd:
      case StageOp::AbsDiff:
      case StageOp::Threshold:
      case StageOp::Scale:
      case StageOp::LogResponse:
      case StageOp::Absolute:
      case StageOp::CompareSample:
        return 1;
    }
    panic("opsPerOutput: unknown op %d", static_cast<int>(params_.op));
}

int64_t
Stage::opsPerFrame() const
{
    return outputsPerFrame() * opsPerOutput();
}

int64_t
Stage::inputReadsPerFrame() const
{
    switch (params_.op) {
      case StageOp::Input:
        return 0;
      case StageOp::ElementwiseSub:
      case StageOp::ElementwiseAdd:
      case StageOp::AbsDiff:
        return 2 * outputsPerFrame();
      case StageOp::FullyConnected:
        return outputsPerFrame() * params_.inputSize.count();
      case StageOp::Threshold:
      case StageOp::Scale:
      case StageOp::LogResponse:
      case StageOp::Absolute:
      case StageOp::Identity:
      case StageOp::CompareSample:
        return params_.inputSize.count();
      case StageOp::Binning:
      case StageOp::AvgPool:
      case StageOp::MaxPool:
      case StageOp::DepthwiseConv2d:
        return outputsPerFrame() * params_.kernel.width *
               params_.kernel.height;
      case StageOp::Conv2d:
        // Every output element reads its full kw*kh*cin window.
        return outputsPerFrame() * params_.kernel.count();
    }
    panic("inputReadsPerFrame: unknown op %d",
          static_cast<int>(params_.op));
}

int64_t
Stage::uniqueInputsPerFrame() const
{
    if (params_.op == StageOp::Input)
        return 0;
    int64_t n = params_.inputSize.count();
    if (stageOpArity(params_.op) == 2)
        n *= 2;
    return n;
}

int64_t
Stage::outputBytesPerFrame() const
{
    return (outputsPerFrame() * params_.bitDepth + 7) / 8;
}

} // namespace camj
