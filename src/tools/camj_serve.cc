/**
 * @file
 * camj_serve: the always-on sweep evaluation daemon. Clients submit
 * sweep documents over a line-oriented JSONL protocol on loopback
 * TCP (see docs/service.md); the daemon lints them, shards them
 * across a worker pool, survives worker death by re-dispatching the
 * hole, and streams merged in-order results back — byte-identical to
 * a local `camj_sweep run` of the same document.
 *
 *   camj_serve --port 0 --port-file port.txt --shards 4 &
 *   camj_client submit study.json --port $(cat port.txt) --out r.jsonl
 *
 * SIGTERM/SIGINT drain: in-flight jobs finish and flush their
 * streams, new submissions are rejected, then the daemon exits 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <signal.h>

#include "common/logging.h"
#include "serve/server.h"

using namespace camj;

namespace
{

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: requestStop only stores an atomic; the
    // accept loop notices within one poll slice and drains.
    if (g_server != nullptr)
        g_server->requestStop();
}

int
usage(std::FILE *to)
{
    std::fprintf(to,
"usage: camj_serve [options]\n"
"  --port P             TCP port on 127.0.0.1 (default 0: ephemeral)\n"
"  --port-file FILE     write the bound port (for --port 0 callers)\n"
"  --shards N           shards (= workers) per job (default 2)\n"
"  --threads T          engine threads per worker (default 1)\n"
"  --frames F           default frames per design point (default 1)\n"
"  --workers MODE       inprocess (default) or subprocess\n"
"  --sweep-bin PATH     camj_sweep binary (subprocess mode)\n"
"  --cache-dir DIR      shared content-addressed outcome store\n"
"  --work-dir DIR       attempt files / shard descriptors\n"
"  --top K              end-of-stream top-K table size (default 5)\n"
"  --heartbeat-sec S    subprocess stall window (default 30)\n"
"  --max-attempts M     dispatch attempts per shard (default 3)\n"
"  --test-fail-shard K  deterministically fail shard K's first\n"
"                       attempt (repeatable; CI fault injection)\n");
    return to == stdout ? 0 : 2;
}

const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s wants a value\n", argv[i]);
        std::exit(usage(stderr));
    }
    return argv[++i];
}

long
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::fprintf(stderr, "error: %s wants a non-negative "
                     "integer, got '%s'\n", what, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    setLoggingEnabled(false);
    serve::ServerOptions options;
    std::string port_file;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        else if (arg == "--port")
            options.port = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--port"));
        else if (arg == "--port-file")
            port_file = flagValue(argc, argv, i);
        else if (arg == "--shards")
            options.scheduler.shards = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i), "--shards"));
        else if (arg == "--threads")
            options.scheduler.threadsPerWorker = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--threads"));
        else if (arg == "--frames")
            options.scheduler.frames = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--frames"));
        else if (arg == "--workers") {
            const std::string mode = flagValue(argc, argv, i);
            if (mode == "inprocess")
                options.scheduler.subprocessWorkers = false;
            else if (mode == "subprocess")
                options.scheduler.subprocessWorkers = true;
            else {
                std::fprintf(stderr, "error: --workers wants "
                             "inprocess or subprocess, got '%s'\n",
                             mode.c_str());
                return usage(stderr);
            }
        } else if (arg == "--sweep-bin")
            options.scheduler.sweepBinary = flagValue(argc, argv, i);
        else if (arg == "--cache-dir")
            options.scheduler.cacheDir = flagValue(argc, argv, i);
        else if (arg == "--work-dir")
            options.scheduler.workDir = flagValue(argc, argv, i);
        else if (arg == "--top")
            options.scheduler.topK = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i), "--top"));
        else if (arg == "--heartbeat-sec")
            options.scheduler.heartbeatSeconds = static_cast<double>(
                parseCount(flagValue(argc, argv, i),
                           "--heartbeat-sec"));
        else if (arg == "--max-attempts")
            options.scheduler.maxAttempts = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i),
                           "--max-attempts"));
        else if (arg == "--test-fail-shard")
            options.scheduler.testFailShards.push_back(
                static_cast<size_t>(parseCount(
                    flagValue(argc, argv, i), "--test-fail-shard")));
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    try {
        serve::Server server(std::move(options));
        g_server = &server;

        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        if (!port_file.empty()) {
            std::ofstream pf(port_file, std::ios::binary);
            pf << server.port() << "\n";
            pf.flush();
            if (!pf)
                fatal("serve: cannot write port file '%s'",
                      port_file.c_str());
        }
        std::printf("camj_serve: listening on 127.0.0.1:%d\n",
                    server.port());
        std::fflush(stdout);
        server.serve();
        std::printf("camj_serve: drained %zu job(s), exiting\n",
                    server.registry().jobs().size());
        g_server = nullptr;
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
