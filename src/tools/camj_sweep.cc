/**
 * @file
 * camj_sweep: the multi-process sweep driver. Takes one sweep
 * document (a DesignSpec JSON with a "sweepGrid" block) from plan to
 * merged results across as many processes — or hosts — as you like:
 *
 *   # split the study into 4 self-contained shard descriptors
 *   camj_sweep plan study.json --shards 4 --outdir work/
 *
 *   # run each shard anywhere (one process per shard; only the
 *   # descriptor file travels)
 *   camj_sweep run work/study-shard-0-of-4.json --out s0.jsonl
 *   ...
 *
 *   # or skip the plan files: shard on the command line
 *   camj_sweep run study.json --shard 2/4 --out s2.jsonl
 *
 *   # reduce the shard files back into one in-order result file
 *   camj_sweep merge s0.jsonl s1.jsonl s2.jsonl s3.jsonl \
 *       --out study.jsonl --total 108
 *
 * The merged file is byte-identical to what a single-process in-order
 * run over the same grid would write (pinned by tests/shard_test.cc);
 * merge aborts loudly on gaps, overlaps, and duplicate indices.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/grid_analyzer.h"
#include "common/logging.h"
#include "explore/jsonl.h"
#include "explore/sweep.h"
#include "spec/shard.h"

using namespace camj;

namespace
{

int
usage(std::FILE *to)
{
    std::fprintf(to,
"usage:\n"
"  camj_sweep plan <sweep.json> --shards N [options]\n"
"      write N self-contained shard descriptor files\n"
"      --mode contiguous|strided   index partition (default contiguous)\n"
"      --outdir DIR                where descriptors go (default .)\n"
"      --prefix NAME               file prefix (default: spec name)\n"
"  camj_sweep run <sweep-or-shard.json> --out FILE [options]\n"
"      evaluate one shard, writing its JSONL result file\n"
"      --shard k/N                 shard a plain sweep document inline\n"
"      --mode contiguous|strided   with --shard (default contiguous)\n"
"      --threads T                 worker threads (default: all cores)\n"
"      --frames F                  frames per design point (default 1)\n"
"      --no-lint                   skip the pre-flight static analysis\n"
"      --cache-dir DIR             content-addressed outcome cache,\n"
"                                  shared across shards and re-runs\n"
"                                  of the base spec\n"
"      --full-rebuild              evaluate every point from scratch\n"
"                                  instead of the incremental staged\n"
"                                  pipeline (results are identical)\n"
"      --verbose                   also print cycle-sim execution\n"
"                                  stats (cycles ticked vs fast-\n"
"                                  forwarded, periods, fallbacks)\n"
"  camj_sweep merge <shard.jsonl>... --out FILE [options]\n"
"      reduce shard files into one in-order result file + summary\n"
"      --top K                     top-K table size (default 5)\n"
"      --total N                   expected design points (catches a\n"
"                                  missing tail shard)\n"
"      --resume-plan FILE          on gaps, write an explicit-index\n"
"                                  shard descriptor covering exactly\n"
"                                  the missing points (exit 3) so\n"
"                                  only the hole is re-run; needs\n"
"                                  --doc\n"
"      --doc FILE                  the original sweep document the\n"
"                                  resume descriptor embeds\n"
"  camj_sweep lint <spec-or-sweep.json> [options]\n"
"      static analysis only: report diagnostics, simulate nothing\n"
"      --werror                    treat warnings as errors\n");
    return to == stdout ? 0 : 2;
}

/** The value of flag @p i; exits with usage on a missing value. */
const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s wants a value\n", argv[i]);
        std::exit(usage(stderr));
    }
    return argv[++i];
}

long
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::fprintf(stderr, "error: %s wants a non-negative "
                     "integer, got '%s'\n", what, text);
        std::exit(2);
    }
    return v;
}

/** Parse "k/N" (e.g. "2/4"). */
void
parseShardSpec(const std::string &text, size_t &k, size_t &n)
{
    const size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 == text.size()) {
        std::fprintf(stderr,
                     "error: --shard wants k/N (e.g. 2/4), got '%s'\n",
                     text.c_str());
        std::exit(2);
    }
    k = static_cast<size_t>(
        parseCount(text.substr(0, slash).c_str(), "--shard k"));
    n = static_cast<size_t>(
        parseCount(text.substr(slash + 1).c_str(), "--shard N"));
}

// ------------------------------------------------------------------ plan

int
cmdPlan(int argc, char **argv)
{
    std::string input, outdir = ".", prefix;
    size_t shards = 0;
    spec::ShardMode mode = spec::ShardMode::Contiguous;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shards")
            shards = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i), "--shards"));
        else if (arg == "--mode")
            mode = spec::shardModeFromName(flagValue(argc, argv, i));
        else if (arg == "--outdir")
            outdir = flagValue(argc, argv, i);
        else if (arg == "--prefix")
            prefix = flagValue(argc, argv, i);
        else if (input.empty() && arg[0] != '-')
            input = arg;
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (input.empty() || shards == 0) {
        std::fprintf(stderr,
                     "error: plan wants <sweep.json> and --shards N\n");
        return usage(stderr);
    }

    const spec::SweepDocument doc = spec::loadSweepFile(input);
    if (prefix.empty())
        prefix = doc.base.name;
    const spec::ShardPlan plan =
        spec::planShards(doc.grid.points(), shards, mode);
    const std::vector<std::string> paths =
        spec::writeShardPlan(doc, plan, outdir, prefix);
    std::printf("planned %zu design points into %zu %s shard(s):\n",
                plan.total, shards, spec::shardModeName(mode).c_str());
    for (size_t k = 0; k < paths.size(); ++k) {
        const spec::ShardAssignment &a = plan.shards[k];
        if (mode == spec::ShardMode::Contiguous)
            std::printf("  %s  [%zu, %zu)  %zu point(s)\n",
                        paths[k].c_str(), a.begin, a.end, a.count());
        else
            std::printf("  %s  {%zu, %zu+%zu, ...}  %zu point(s)\n",
                        paths[k].c_str(), a.shardIndex, a.shardIndex,
                        a.shardCount, a.count());
    }
    return 0;
}

// ------------------------------------------------------------------- run

int
cmdRun(int argc, char **argv)
{
    std::string input, out_path, shard_arg, cache_dir;
    spec::ShardMode mode = spec::ShardMode::Contiguous;
    int threads = 0, frames = 1;
    bool incremental = true, lint = true, verbose = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out")
            out_path = flagValue(argc, argv, i);
        else if (arg == "--shard")
            shard_arg = flagValue(argc, argv, i);
        else if (arg == "--cache-dir")
            cache_dir = flagValue(argc, argv, i);
        else if (arg == "--mode")
            mode = spec::shardModeFromName(flagValue(argc, argv, i));
        else if (arg == "--full-rebuild")
            incremental = false;
        else if (arg == "--no-lint")
            lint = false;
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--threads")
            threads = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--threads"));
        else if (arg == "--frames")
            frames = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--frames"));
        else if (input.empty() && arg[0] != '-')
            input = arg;
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (input.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "error: run wants <sweep-or-shard.json> and "
                     "--out FILE\n");
        return usage(stderr);
    }

    spec::ShardDescriptor descriptor = spec::loadShardFile(input);
    if (!shard_arg.empty()) {
        size_t k = 0, n = 0;
        parseShardSpec(shard_arg, k, n);
        if (k >= n) {
            // An argument error, not a data error: usage + exit 2
            // like every other malformed flag.
            std::fprintf(stderr,
                         "error: --shard %zu/%zu: k must be < N\n", k,
                         n);
            return usage(stderr);
        }
        const spec::ShardPlan plan =
            spec::planShards(descriptor.shard.total, n, mode);
        descriptor.shard = plan.shards[k];
    }

    if (lint) {
        // Pre-flight: a base spec the static analyzer can prove
        // broken would fail on every design point — abort before
        // spinning up workers. --no-lint opts out.
        analysis::SpecAnalyzer analyzer;
        const std::vector<analysis::Diagnostic> diags =
            analyzer.analyze(descriptor.doc.base);
        if (analysis::hasErrors(diags)) {
            std::fputs(
                analysis::formatDiagnostics(diags, input).c_str(),
                stderr);
            std::fprintf(stderr,
                         "error: run: base spec fails static "
                         "analysis (re-run with --no-lint to force, "
                         "or see camj_sweep lint)\n");
            return 1;
        }
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        fatal("run: cannot write '%s'", out_path.c_str());

    spec::GridSpecSource grid = descriptor.gridSource();
    spec::ShardSpecSource source(grid, descriptor.shard);

    SweepOptions options;
    options.threads = threads;
    options.sim.frames = frames;
    // Grid deltas ride the incremental staged pipeline by default
    // (bit-identical to full rebuilds; --full-rebuild opts out).
    options.incremental = incremental;
    options.reuseMaterializations = !incremental;
    // Shard processes re-running (or re-trying) overlapping index
    // ranges share finished outcomes through the on-disk store.
    options.cacheDir = cache_dir;
    SweepEngine engine(options);

    // Local stream order -> global grid identity -> bytes: the
    // in-order adapter guarantees ascending-index shard files (what
    // the merge's one-line lookahead relies on).
    JsonlSink lines(out);
    ReindexSink global(lines, [&](size_t local) {
        return descriptor.shard.globalIndex(local);
    });
    InOrderSink ordered(global);
    const StreamStats stats = engine.runStream(source, ordered);

    std::printf("shard %zu/%zu: evaluated %zu of %zu global point(s) "
                "-> %s (%zu line(s))\n", descriptor.shard.shardIndex,
                descriptor.shard.shardCount, stats.delivered,
                descriptor.shard.total, out_path.c_str(),
                lines.written());
    if (verbose) {
        const CycleSimStats &cs = stats.cycleSim;
        const int64_t total = cs.cyclesTicked + cs.cyclesFastForwarded;
        std::printf("cycle-sim: %lld cycle(s) simulated (%lld ticked, "
                    "%lld fast-forwarded), %lld period jump(s), "
                    "%lld fallback(s)\n",
                    static_cast<long long>(total),
                    static_cast<long long>(cs.cyclesTicked),
                    static_cast<long long>(cs.cyclesFastForwarded),
                    static_cast<long long>(cs.periodsDetected),
                    static_cast<long long>(cs.fallbacks));
    }
    return 0;
}

// ----------------------------------------------------------------- merge

int
cmdMerge(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string out_path, resume_path, doc_path;
    size_t top_k = 5;
    std::optional<size_t> expected_total;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out")
            out_path = flagValue(argc, argv, i);
        else if (arg == "--top")
            top_k = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i), "--top"));
        else if (arg == "--total")
            expected_total = static_cast<size_t>(
                parseCount(flagValue(argc, argv, i), "--total"));
        else if (arg == "--resume-plan")
            resume_path = flagValue(argc, argv, i);
        else if (arg == "--doc")
            doc_path = flagValue(argc, argv, i);
        else if (arg[0] != '-')
            inputs.push_back(arg);
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (inputs.empty() || out_path.empty()) {
        std::fprintf(stderr, "error: merge wants shard files and "
                     "--out FILE\n");
        return usage(stderr);
    }

    if (!resume_path.empty()) {
        // Retry/resume: scan the shard files for holes BEFORE the
        // strict merge (which would abort at the first gap). A hole
        // becomes one explicit-index shard descriptor covering
        // exactly the missing global indices — re-run it, add its
        // JSONL to the merge inputs, and the merge completes.
        if (doc_path.empty()) {
            std::fprintf(stderr, "error: --resume-plan needs --doc "
                         "<sweep.json> (the document the resume "
                         "descriptor embeds)\n");
            return usage(stderr);
        }
        const spec::SweepDocument doc = spec::loadSweepFile(doc_path);
        const size_t total = doc.grid.points();
        if (expected_total && *expected_total != total)
            fatal("merge: --total %zu disagrees with %s, whose grid "
                  "expands to %zu points", *expected_total,
                  doc_path.c_str(), total);
        expected_total = total;
        const std::vector<size_t> missing =
            missingShardIndices(inputs, total);
        if (!missing.empty()) {
            spec::ShardDescriptor resume{
                doc, spec::explicitShard(total, missing)};
            std::ofstream plan(resume_path, std::ios::binary);
            plan << spec::shardDescriptorToJson(resume);
            plan.flush();
            if (!plan)
                fatal("merge: cannot write '%s'", resume_path.c_str());
            std::printf(
                "merge: %zu of %zu design point(s) missing "
                "(first: %zu, last: %zu)\n"
                "wrote resume shard descriptor %s\n"
                "re-run it and merge again with its output added:\n"
                "  camj_sweep run %s --out resume.jsonl\n",
                missing.size(), total, missing.front(),
                missing.back(), resume_path.c_str(),
                resume_path.c_str());
            return 3;
        }
        std::printf("merge: no gaps — all %zu design point(s) "
                    "covered\n", total);
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        fatal("merge: cannot write '%s'", out_path.c_str());
    const MergeSummary summary =
        mergeShardFiles(inputs, out, top_k, expected_total);
    std::printf("merged %zu shard file(s) -> %s\n%s", inputs.size(),
                out_path.c_str(),
                formatMergeSummary(summary).c_str());
    return 0;
}

// ------------------------------------------------------------------ lint

int
cmdLint(int argc, char **argv)
{
    std::string input;
    bool werror = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--werror")
            werror = true;
        else if (input.empty() && arg[0] != '-')
            input = arg;
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (input.empty()) {
        std::fprintf(stderr,
                     "error: lint wants <spec-or-sweep.json>\n");
        return usage(stderr);
    }

    std::ifstream in(input, std::ios::binary);
    if (!in)
        fatal("lint: cannot read '%s'", input.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<analysis::Diagnostic> diags;
    bool parsed = false;
    json::Value doc;
    try {
        doc = json::Value::parse(text);
        parsed = true;
    } catch (const ConfigError &e) {
        diags.push_back(analysis::makeError(
            analysis::classifyError(e.what()), "", e.what()));
    }
    if (parsed) {
        analysis::SpecAnalyzer analyzer;
        diags = analyzer.analyzeDocument(doc);
    }
    std::fputs(
        analysis::formatDiagnostics(diags, input).c_str(), stdout);
    size_t errors =
        analysis::countSeverity(diags, analysis::Severity::Error);
    const size_t warnings = analysis::countSeverity(
        diags, analysis::Severity::Warning);

    if (parsed && errors == 0) {
        const spec::SweepDocument sweep =
            spec::sweepDocumentFromJson(text);
        if (sweep.grid.points() > 1) {
            analysis::GridAnalyzer grid;
            const analysis::GridAnalysis result = grid.analyze(sweep);
            std::fputs(result.summary().c_str(), stdout);
            std::printf("%s: grid expands to %zu point(s), %zu "
                        "provably infeasible\n",
                        input.c_str(), result.totalPoints(),
                        result.prunedPoints());
        }
    }
    std::printf("%s: %zu error(s), %zu warning(s)\n", input.c_str(),
                errors, warnings);
    return errors > 0 || (werror && warnings > 0) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLoggingEnabled(false);
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(stdout);
    try {
        if (cmd == "plan")
            return cmdPlan(argc - 2, argv + 2);
        if (cmd == "run")
            return cmdRun(argc - 2, argv + 2);
        if (cmd == "merge")
            return cmdMerge(argc - 2, argv + 2);
        if (cmd == "lint")
            return cmdLint(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                 cmd.c_str());
    return usage(stderr);
}
