/**
 * @file
 * camj_client: the CLI of the sweep service. Submit a sweep document
 * and stream its merged results to a file (byte-identical to a local
 * `camj_sweep run` of the same document), query or cancel running
 * jobs, or wait for a daemon to come up:
 *
 *   camj_client ping --port 7070 --wait-sec 10
 *   camj_client submit study.json --port 7070 --out results.jsonl
 *   camj_client status job-1 --port 7070
 *   camj_client cancel job-1 --port 7070
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "serve/client.h"

using namespace camj;

namespace
{

int
usage(std::FILE *to)
{
    std::fprintf(to,
"usage:\n"
"  camj_client submit <sweep.json> --port P [options]\n"
"      submit and stream the merged results\n"
"      --out FILE     streamed result lines (default: stdout)\n"
"      --frames F     frames per design point (server default)\n"
"      --threads T    engine threads per worker (server default)\n"
"  camj_client status <job> --port P     one status frame\n"
"  camj_client cancel <job> --port P     fire the job's cancel token\n"
"  camj_client jobs --port P             every job's status\n"
"  camj_client ping --port P [--wait-sec S]\n"
"      exit 0 once the daemon answers (retrying up to S seconds)\n"
"  common options:\n"
"      --host ADDR    numeric IPv4 address (default 127.0.0.1)\n");
    return to == stdout ? 0 : 2;
}

const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s wants a value\n", argv[i]);
        std::exit(usage(stderr));
    }
    return argv[++i];
}

long
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::fprintf(stderr, "error: %s wants a non-negative "
                     "integer, got '%s'\n", what, text);
        std::exit(2);
    }
    return v;
}

struct CommonArgs
{
    int port = 0;
    std::string host = "127.0.0.1";
};

} // namespace

int
main(int argc, char **argv)
{
    setLoggingEnabled(false);
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(stdout);

    CommonArgs common;
    std::string positional, out_path;
    int frames = 0, threads = 0;
    double wait_sec = 0.0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port")
            common.port = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--port"));
        else if (arg == "--host")
            common.host = flagValue(argc, argv, i);
        else if (arg == "--out")
            out_path = flagValue(argc, argv, i);
        else if (arg == "--frames")
            frames = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--frames"));
        else if (arg == "--threads")
            threads = static_cast<int>(
                parseCount(flagValue(argc, argv, i), "--threads"));
        else if (arg == "--wait-sec")
            wait_sec = static_cast<double>(
                parseCount(flagValue(argc, argv, i), "--wait-sec"));
        else if (positional.empty() && arg[0] != '-')
            positional = arg;
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (common.port == 0) {
        std::fprintf(stderr, "error: --port is required\n");
        return usage(stderr);
    }

    try {
        if (cmd == "ping") {
            if (wait_sec > 0.0) {
                if (!serve::waitForServer(common.port, wait_sec,
                                          common.host)) {
                    std::fprintf(stderr, "error: no daemon on "
                                 "%s:%d after %.0f s\n",
                                 common.host.c_str(), common.port,
                                 wait_sec);
                    return 1;
                }
            } else {
                serve::Client client(common.port, common.host);
                client.ping();
            }
            std::printf("pong\n");
            return 0;
        }
        if (cmd == "submit") {
            if (positional.empty()) {
                std::fprintf(stderr,
                             "error: submit wants <sweep.json>\n");
                return usage(stderr);
            }
            std::ifstream in(positional, std::ios::binary);
            if (!in)
                fatal("client: cannot read '%s'",
                      positional.c_str());
            std::ostringstream buf;
            buf << in.rdbuf();

            std::ofstream file;
            std::ostream *out = &std::cout;
            if (!out_path.empty()) {
                file.open(out_path, std::ios::binary);
                if (!file)
                    fatal("client: cannot write '%s'",
                          out_path.c_str());
                out = &file;
            }
            serve::Client client(common.port, common.host);
            const serve::Client::SubmitOutcome outcome =
                client.submitAndStream(buf.str(), *out, frames,
                                       threads);
            const std::string state =
                outcome.end.getString("state", "failed");
            // Human-readable reporting goes to stderr so stdout
            // stays clean when it carries the result stream.
            std::fprintf(stderr,
                         "%s: %s — %zu line(s), %lld cache hit(s), "
                         "%lld worker restart(s)\n",
                         outcome.jobId.c_str(), state.c_str(),
                         outcome.resultLines,
                         static_cast<long long>(
                             outcome.end.getInt("cacheHits", 0)),
                         static_cast<long long>(outcome.end.getInt(
                             "workerRestarts", 0)));
            if (const json::Value *summary =
                    outcome.end.find("summary"))
                std::fputs(
                    summary->getString("text", "").c_str(), stderr);
            if (state != "done") {
                std::fprintf(stderr, "error: job %s: %s\n",
                             outcome.jobId.c_str(),
                             outcome.end.getString("error", state)
                                 .c_str());
                return 1;
            }
            return 0;
        }
        if (cmd == "status" || cmd == "cancel") {
            if (positional.empty()) {
                std::fprintf(stderr, "error: %s wants a job id\n",
                             cmd.c_str());
                return usage(stderr);
            }
            serve::Client client(common.port, common.host);
            const json::Value reply =
                cmd == "status" ? client.status(positional)
                                : client.cancel(positional);
            std::printf("%s\n", reply.dump(0).c_str());
            return 0;
        }
        if (cmd == "jobs") {
            serve::Client client(common.port, common.host);
            std::printf("%s\n", client.jobs().dump(0).c_str());
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                 cmd.c_str());
    return usage(stderr);
}
