/**
 * @file
 * camj_lint: the static spec analyzer as a command-line tool. Lints
 * one or more spec/sweep documents without simulating anything:
 *
 *   camj_lint detector_sweep.json
 *   camj_lint specs/a.json specs/b.json --werror
 *
 * Output is gcc-style, one finding per line, prefixed with the file:
 *
 *   detector.json: error CAMJ-E003 at units[Classifier].\
 *       inputMemories[0]: unit 'Classifier' references unknown \
 *       memory 'ActBfu' (hint: registered memories: ActBuf)
 *
 * Documents with a sweepGrid additionally get the grid analysis: how
 * many of the expanded points are provably infeasible, and why.
 *
 * Exit codes: 0 clean (or warnings without --werror), 1 findings,
 * 2 usage errors. docs/lint_rules.md catalogues every rule code.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/grid_analyzer.h"
#include "common/logging.h"
#include "spec/grid.h"

using namespace camj;

namespace
{

int
usage(std::FILE *to)
{
    std::fprintf(to,
"usage:\n"
"  camj_lint <spec-or-sweep.json>... [options]\n"
"      statically analyze spec documents (no simulation)\n"
"      --werror                    treat warnings as errors\n"
"      --quiet                     findings only, no per-file summary\n");
    return to == stdout ? 0 : 2;
}

struct FileReport
{
    size_t errors = 0;
    size_t warnings = 0;
};

FileReport
lintFile(const std::string &path, bool quiet)
{
    FileReport report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: error: cannot read file\n",
                     path.c_str());
        report.errors = 1;
        return report;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<analysis::Diagnostic> diags;
    bool parsed = false;
    json::Value doc;
    try {
        doc = json::Value::parse(text);
        parsed = true;
    } catch (const ConfigError &e) {
        diags.push_back(analysis::makeError(
            analysis::classifyError(e.what()), "", e.what()));
    }
    if (parsed) {
        analysis::SpecAnalyzer analyzer;
        diags = analyzer.analyzeDocument(doc);
    }
    std::fputs(
        analysis::formatDiagnostics(diags, path).c_str(), stdout);
    report.errors = analysis::countSeverity(
        diags, analysis::Severity::Error);
    report.warnings = analysis::countSeverity(
        diags, analysis::Severity::Warning);

    // Grid analysis: only meaningful when the document parses into a
    // spec at all (a broken base spec already failed above).
    if (parsed && report.errors == 0) {
        try {
            const spec::SweepDocument sweep =
                spec::sweepDocumentFromJson(text);
            if (sweep.grid.points() > 1) {
                analysis::GridAnalyzer grid;
                const analysis::GridAnalysis result =
                    grid.analyze(sweep);
                std::fputs(result.summary().c_str(), stdout);
                if (!quiet)
                    std::printf(
                        "%s: grid expands to %zu point(s), %zu "
                        "provably infeasible\n",
                        path.c_str(), result.totalPoints(),
                        result.prunedPoints());
            }
        } catch (const ConfigError &e) {
            std::printf("%s: %s\n", path.c_str(),
                        analysis::makeError(
                            analysis::classifyError(e.what()), "",
                            e.what())
                            .format()
                            .c_str());
            ++report.errors;
        }
    }
    if (!quiet)
        std::printf("%s: %zu error(s), %zu warning(s)\n",
                    path.c_str(), report.errors, report.warnings);
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    setLoggingEnabled(false);
    bool werror = false, quiet = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--werror")
            werror = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg[0] != '-')
            files.push_back(arg);
        else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "error: no input files\n");
        return usage(stderr);
    }

    size_t errors = 0, warnings = 0;
    for (const std::string &path : files) {
        const FileReport report = lintFile(path, quiet);
        errors += report.errors;
        warnings += report.warnings;
    }
    if (errors > 0)
        return 1;
    if (werror && warnings > 0)
        return 1;
    return 0;
}
