#include "spec/diff.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "spec/grid.h"

namespace camj::spec
{

using json::Value;

namespace
{

/** True when every element is an object with a unique string "name"
 *  member — the spec's hardware/stage list shape. */
bool
nameKeyed(const Value::Array &arr)
{
    if (arr.empty())
        return false;
    std::set<std::string> names;
    for (const Value &e : arr) {
        if (!e.isObject())
            return false;
        const Value *n = e.find("name");
        if (n == nullptr || !n->isString() ||
            !names.insert(n->asString()).second)
            return false;
    }
    return true;
}

bool
sameValue(const Value &a, const Value &b)
{
    // Structural equality: same type, same members in the same order
    // — for serializable values exactly the notion of equality the
    // deterministic writer (and therefore save/load) preserves, but
    // computed on the trees, with no serialization.
    return a == b;
}

void
emit(std::vector<SpecDifference> &out, SpecDifference::Kind kind,
     const std::string &path, const Value *a, const Value *b)
{
    SpecDifference d;
    d.kind = kind;
    d.path = path;
    if (a != nullptr)
        d.before = a->dump(0);
    if (b != nullptr)
        d.after = b->dump(0);
    out.push_back(std::move(d));
}

void diffValues(const Value &a, const Value &b, const std::string &path,
                std::vector<SpecDifference> &out);

void
diffObjects(const Value &a, const Value &b, const std::string &path,
            std::vector<SpecDifference> &out)
{
    const std::string prefix = path.empty() ? "" : path + ".";
    for (const auto &[key, va] : a.asObject()) {
        if (const Value *vb = b.find(key))
            diffValues(va, *vb, prefix + key, out);
        else
            emit(out, SpecDifference::Kind::Removed, prefix + key,
                 &va, nullptr);
    }
    for (const auto &[key, vb] : b.asObject()) {
        if (a.find(key) == nullptr)
            emit(out, SpecDifference::Kind::Added, prefix + key,
                 nullptr, &vb);
    }
}

void
diffArrays(const Value &a, const Value &b, const std::string &path,
           std::vector<SpecDifference> &out)
{
    const Value::Array &aa = a.asArray();
    const Value::Array &ba = b.asArray();

    if (nameKeyed(aa) && nameKeyed(ba)) {
        for (const Value &ea : aa) {
            const std::string &name = ea.at("name").asString();
            const std::string epath = path + "[" + name + "]";
            const Value *match = nullptr;
            for (const Value &eb : ba) {
                if (eb.at("name").asString() == name) {
                    match = &eb;
                    break;
                }
            }
            if (match != nullptr)
                diffValues(ea, *match, epath, out);
            else
                emit(out, SpecDifference::Kind::Removed, epath, &ea,
                     nullptr);
        }
        for (size_t i = 0; i < ba.size(); ++i) {
            const Value &eb = ba[i];
            const std::string &name = eb.at("name").asString();
            bool present = false;
            for (const Value &ea : aa) {
                if (ea.at("name").asString() == name) {
                    present = true;
                    break;
                }
            }
            if (!present) {
                emit(out, SpecDifference::Kind::Added,
                     path + "[" + name + "]", nullptr, &eb);
                out.back().position = i;
            }
        }
        return;
    }

    const size_t common = aa.size() < ba.size() ? aa.size() : ba.size();
    for (size_t i = 0; i < common; ++i)
        diffValues(aa[i], ba[i], path + "[" + std::to_string(i) + "]",
                   out);
    for (size_t i = common; i < aa.size(); ++i)
        emit(out, SpecDifference::Kind::Removed,
             path + "[" + std::to_string(i) + "]", &aa[i], nullptr);
    for (size_t i = common; i < ba.size(); ++i) {
        emit(out, SpecDifference::Kind::Added,
             path + "[" + std::to_string(i) + "]", nullptr, &ba[i]);
        out.back().position = i;
    }
}

void
diffValues(const Value &a, const Value &b, const std::string &path,
           std::vector<SpecDifference> &out)
{
    if (a.isObject() && b.isObject()) {
        diffObjects(a, b, path, out);
        return;
    }
    if (a.isArray() && b.isArray()) {
        diffArrays(a, b, path, out);
        return;
    }
    if (!sameValue(a, b))
        emit(out, SpecDifference::Kind::Changed, path, &a, &b);
}

} // namespace

std::vector<SpecDifference>
diffJsonValues(const Value &a, const Value &b)
{
    std::vector<SpecDifference> out;
    diffValues(a, b, "", out);
    return out;
}

std::vector<SpecDifference>
diffSpecs(const DesignSpec &a, const DesignSpec &b)
{
    return diffJsonValues(toJsonValue(a), toJsonValue(b));
}

// ------------------------------------------------------- serialization

namespace
{

const char *
diffKindName(SpecDifference::Kind kind)
{
    switch (kind) {
      case SpecDifference::Kind::Added:
        return "added";
      case SpecDifference::Kind::Removed:
        return "removed";
      case SpecDifference::Kind::Changed:
        return "changed";
    }
    panic("diffKindName: unknown kind %d", static_cast<int>(kind));
}

SpecDifference::Kind
diffKindFromName(const std::string &name)
{
    if (name == "added")
        return SpecDifference::Kind::Added;
    if (name == "removed")
        return SpecDifference::Kind::Removed;
    if (name == "changed")
        return SpecDifference::Kind::Changed;
    fatal("specDiff: unknown change kind '%s' (known: added, "
          "removed, changed)", name.c_str());
}

} // namespace

Value
diffToJsonValue(const std::vector<SpecDifference> &diffs)
{
    Value doc = Value::makeObject();
    doc.set("camjSpecDiff", Value(static_cast<int64_t>(1)));
    Value changes = Value::makeArray();
    for (const SpecDifference &d : diffs) {
        Value c = Value::makeObject();
        c.set("kind", Value(diffKindName(d.kind)));
        c.set("path", Value(d.path));
        // before/after are the compact-JSON renderings diffing
        // produced; storing them verbatim keeps application exact.
        if (d.kind != SpecDifference::Kind::Added)
            c.set("before", Value(d.before));
        if (d.kind != SpecDifference::Kind::Removed)
            c.set("after", Value(d.after));
        if (d.position != SpecDifference::kNoPosition)
            c.set("position",
                  Value(static_cast<int64_t>(d.position)));
        changes.push(std::move(c));
    }
    doc.set("changes", std::move(changes));
    return doc;
}

std::string
diffToJson(const std::vector<SpecDifference> &diffs)
{
    return diffToJsonValue(diffs).dump(2) + "\n";
}

std::vector<SpecDifference>
diffFromJsonValue(const Value &doc)
{
    std::vector<SpecDifference> diffs;
    for (const Value &c : doc.at("changes").asArray()) {
        SpecDifference d;
        d.kind = diffKindFromName(c.at("kind").asString());
        d.path = c.at("path").asString();
        if (d.kind != SpecDifference::Kind::Added)
            d.before = c.at("before").asString();
        if (d.kind != SpecDifference::Kind::Removed)
            d.after = c.at("after").asString();
        if (const Value *pos = c.find("position")) {
            const int64_t p = pos->asInt();
            if (p < 0)
                fatal("specDiff: negative position %lld",
                      static_cast<long long>(p));
            d.position = static_cast<size_t>(p);
        }
        if (d.path.empty())
            fatal("specDiff: a change has an empty path");
        diffs.push_back(std::move(d));
    }
    return diffs;
}

std::vector<SpecDifference>
diffFromJson(const std::string &text)
{
    return diffFromJsonValue(Value::parse(text));
}

// --------------------------------------------------------------- merge

namespace
{

/** Index of @p seg's element within array @p arr, or npos. Diff
 *  paths select by element name or by index; the grid-only "*"
 *  wildcard is rejected. */
size_t
elementIndex(const Value::Array &arr, const SpecPathSegment &seg,
             const std::string &path)
{
    constexpr size_t npos = static_cast<size_t>(-1);
    if (seg.selector == "*")
        fatal("specDiff: path '%s': '*' selectors cannot appear in "
              "a diff", path.c_str());
    if (isIndexSelector(seg.selector)) {
        if (seg.selector.size() > 12)
            fatal("specDiff: path '%s': index selector '[%s]' is out "
                  "of range", path.c_str(), seg.selector.c_str());
        const size_t idx =
            static_cast<size_t>(std::stoull(seg.selector));
        return idx < arr.size() ? idx : npos;
    }
    for (size_t i = 0; i < arr.size(); ++i) {
        const Value *n = arr[i].find("name");
        if (n != nullptr && n->isString() &&
            n->asString() == seg.selector)
            return i;
    }
    return npos;
}

/** Walk every segment but the last; the returned object holds the
 *  final segment. @throws ConfigError when a step fails. */
Value &
resolveParent(Value &doc, const std::vector<SpecPathSegment> &segs,
              const std::string &path)
{
    Value *node = &doc;
    for (size_t i = 0; i + 1 < segs.size(); ++i) {
        const SpecPathSegment &seg = segs[i];
        if (!node->isObject())
            fatal("specDiff: path '%s': segment '%s' applied to a "
                  "non-object value", path.c_str(),
                  seg.member.c_str());
        Value *child = node->find(seg.member);
        if (child == nullptr)
            fatal("specDiff: path '%s': no member '%s' — the diff "
                  "does not fit this document", path.c_str(),
                  seg.member.c_str());
        if (seg.hasSelector) {
            if (!child->isArray())
                fatal("specDiff: path '%s': member '%s' carries "
                      "selector '[%s]' but is not an array",
                      path.c_str(), seg.member.c_str(),
                      seg.selector.c_str());
            const size_t idx =
                elementIndex(child->asArray(), seg, path);
            if (idx == static_cast<size_t>(-1))
                fatal("specDiff: path '%s': no element '[%s]' in "
                      "'%s'", path.c_str(), seg.selector.c_str(),
                      seg.member.c_str());
            child = &child->mutableArray()[idx];
        }
        node = child;
    }
    if (!node->isObject())
        fatal("specDiff: path '%s': the final segment's container is "
              "not an object", path.c_str());
    return *node;
}

/** Verify a leaf's current rendering matches the diff's recorded
 *  value — a mismatch means the diff was taken against a different
 *  base document. */
void
verifyBefore(const Value &leaf, const SpecDifference &d)
{
    if (leaf.dump(0) != d.before)
        fatal("specDiff: path '%s': document value %s does not match "
              "the diff's recorded value %s — this diff belongs to a "
              "different base spec", d.path.c_str(),
              leaf.dump(0).c_str(), d.before.c_str());
}

void
applyChanged(Value &doc, const SpecDifference &d,
             const std::vector<SpecPathSegment> &segs)
{
    Value &parent = resolveParent(doc, segs, d.path);
    const SpecPathSegment &last = segs.back();
    Value *leaf = parent.find(last.member);
    if (leaf == nullptr)
        fatal("specDiff: path '%s': no member '%s' — the diff does "
              "not fit this document", d.path.c_str(),
              last.member.c_str());
    if (last.hasSelector) {
        if (!leaf->isArray())
            fatal("specDiff: path '%s': member '%s' carries selector "
                  "'[%s]' but is not an array", d.path.c_str(),
                  last.member.c_str(), last.selector.c_str());
        const size_t idx = elementIndex(leaf->asArray(), last, d.path);
        if (idx == static_cast<size_t>(-1))
            fatal("specDiff: path '%s': no element '[%s]' in '%s'",
                  d.path.c_str(), last.selector.c_str(),
                  last.member.c_str());
        leaf = &leaf->mutableArray()[idx];
    }
    verifyBefore(*leaf, d);
    *leaf = Value::parse(d.after);
}

void
applyAdded(Value &doc, const SpecDifference &d,
           const std::vector<SpecPathSegment> &segs)
{
    Value &parent = resolveParent(doc, segs, d.path);
    const SpecPathSegment &last = segs.back();
    Value value = Value::parse(d.after);
    if (!last.hasSelector) {
        if (parent.find(last.member) != nullptr)
            fatal("specDiff: path '%s': member '%s' already exists — "
                  "this diff belongs to a different base spec",
                  d.path.c_str(), last.member.c_str());
        parent.set(last.member, std::move(value));
        return;
    }
    Value *arr = parent.find(last.member);
    if (arr == nullptr || !arr->isArray())
        fatal("specDiff: path '%s': '%s' is not an existing array",
              d.path.c_str(), last.member.c_str());
    if (elementIndex(arr->asArray(), last, d.path) !=
        static_cast<size_t>(-1))
        fatal("specDiff: path '%s': element '[%s]' already exists — "
              "this diff belongs to a different base spec",
              d.path.c_str(), last.selector.c_str());
    // Insert where the element sits in the target spec's array when
    // the diff recorded it, else append. Removals have already been
    // applied (see applyDiffToJson's pass order), so the surviving
    // elements are in target relative order and the recorded index
    // lands exactly; the clamp only covers hand-written diffs.
    Value::Array &elements = arr->mutableArray();
    const size_t at = d.position == SpecDifference::kNoPosition
                          ? elements.size()
                          : std::min(d.position, elements.size());
    elements.insert(elements.begin() + static_cast<long>(at),
                    std::move(value));
}

void
applyRemoved(Value &doc, const SpecDifference &d,
             const std::vector<SpecPathSegment> &segs)
{
    Value &parent = resolveParent(doc, segs, d.path);
    const SpecPathSegment &last = segs.back();
    Value *member = parent.find(last.member);
    if (member == nullptr)
        fatal("specDiff: path '%s': no member '%s' to remove — this "
              "diff belongs to a different base spec", d.path.c_str(),
              last.member.c_str());
    if (!last.hasSelector) {
        verifyBefore(*member, d);
        Value::Object &obj = parent.mutableObject();
        obj.erase(std::find_if(obj.begin(), obj.end(),
                               [&](const auto &kv) {
                                   return kv.first == last.member;
                               }));
        return;
    }
    if (!member->isArray())
        fatal("specDiff: path '%s': member '%s' carries selector "
              "'[%s]' but is not an array", d.path.c_str(),
              last.member.c_str(), last.selector.c_str());
    const size_t idx = elementIndex(member->asArray(), last, d.path);
    if (idx == static_cast<size_t>(-1))
        fatal("specDiff: path '%s': no element '[%s]' to remove — "
              "this diff belongs to a different base spec",
              d.path.c_str(), last.selector.c_str());
    verifyBefore(member->asArray()[idx], d);
    Value::Array &arr = member->mutableArray();
    arr.erase(arr.begin() + static_cast<long>(idx));
}

} // namespace

void
applyDiffToJson(Value &doc, const std::vector<SpecDifference> &diffs)
{
    // Three passes, ordered so no pass can disturb another's
    // addressing. Changed first (it addresses only elements common
    // to both specs, untouched by the other passes). Removed second,
    // in REVERSE diff order, so index-keyed removals go highest-first
    // and never shift a pending lower index. Added LAST: once the
    // removed elements are gone, the surviving elements sit in the
    // target's relative order, so inserting each addition at its
    // recorded target-array position (ascending, the order diffs
    // emit them) reproduces the target array exactly — inserting
    // before the removals would land additions after still-present
    // doomed elements and scramble the order.
    for (const SpecDifference &d : diffs) {
        if (d.kind == SpecDifference::Kind::Changed)
            applyChanged(doc, d, parseSpecPath(d.path));
    }
    for (auto it = diffs.rbegin(); it != diffs.rend(); ++it) {
        if (it->kind == SpecDifference::Kind::Removed)
            applyRemoved(doc, *it, parseSpecPath(it->path));
    }
    for (const SpecDifference &d : diffs) {
        if (d.kind == SpecDifference::Kind::Added)
            applyAdded(doc, d, parseSpecPath(d.path));
    }
}

DesignSpec
applyDiff(const DesignSpec &base,
          const std::vector<SpecDifference> &diffs)
{
    Value doc = toJsonValue(base);
    applyDiffToJson(doc, diffs);
    return fromJsonValue(doc);
}

std::string
formatSpecDiff(const std::vector<SpecDifference> &diffs)
{
    std::string out;
    for (const SpecDifference &d : diffs) {
        switch (d.kind) {
          case SpecDifference::Kind::Added:
            out += strprintf("+ %s = %s\n", d.path.c_str(),
                             d.after.c_str());
            break;
          case SpecDifference::Kind::Removed:
            out += strprintf("- %s = %s\n", d.path.c_str(),
                             d.before.c_str());
            break;
          case SpecDifference::Kind::Changed:
            out += strprintf("  %s: %s -> %s\n", d.path.c_str(),
                             d.before.c_str(), d.after.c_str());
            break;
        }
    }
    return out;
}

} // namespace camj::spec
