#include "spec/diff.h"

#include <set>

#include "common/logging.h"

namespace camj::spec
{

using json::Value;

namespace
{

/** True when every element is an object with a unique string "name"
 *  member — the spec's hardware/stage list shape. */
bool
nameKeyed(const Value::Array &arr)
{
    if (arr.empty())
        return false;
    std::set<std::string> names;
    for (const Value &e : arr) {
        if (!e.isObject())
            return false;
        const Value *n = e.find("name");
        if (n == nullptr || !n->isString() ||
            !names.insert(n->asString()).second)
            return false;
    }
    return true;
}

bool
sameValue(const Value &a, const Value &b)
{
    // Structural equality via the deterministic writer: same type,
    // same members in the same order, numbers via %.17g (bit-exact
    // doubles). Exactly the notion of equality save/load preserves.
    return a.dump(0) == b.dump(0);
}

void
emit(std::vector<SpecDifference> &out, SpecDifference::Kind kind,
     const std::string &path, const Value *a, const Value *b)
{
    SpecDifference d;
    d.kind = kind;
    d.path = path;
    if (a != nullptr)
        d.before = a->dump(0);
    if (b != nullptr)
        d.after = b->dump(0);
    out.push_back(std::move(d));
}

void diffValues(const Value &a, const Value &b, const std::string &path,
                std::vector<SpecDifference> &out);

void
diffObjects(const Value &a, const Value &b, const std::string &path,
            std::vector<SpecDifference> &out)
{
    const std::string prefix = path.empty() ? "" : path + ".";
    for (const auto &[key, va] : a.asObject()) {
        if (const Value *vb = b.find(key))
            diffValues(va, *vb, prefix + key, out);
        else
            emit(out, SpecDifference::Kind::Removed, prefix + key,
                 &va, nullptr);
    }
    for (const auto &[key, vb] : b.asObject()) {
        if (a.find(key) == nullptr)
            emit(out, SpecDifference::Kind::Added, prefix + key,
                 nullptr, &vb);
    }
}

void
diffArrays(const Value &a, const Value &b, const std::string &path,
           std::vector<SpecDifference> &out)
{
    const Value::Array &aa = a.asArray();
    const Value::Array &ba = b.asArray();

    if (nameKeyed(aa) && nameKeyed(ba)) {
        for (const Value &ea : aa) {
            const std::string &name = ea.at("name").asString();
            const std::string epath = path + "[" + name + "]";
            const Value *match = nullptr;
            for (const Value &eb : ba) {
                if (eb.at("name").asString() == name) {
                    match = &eb;
                    break;
                }
            }
            if (match != nullptr)
                diffValues(ea, *match, epath, out);
            else
                emit(out, SpecDifference::Kind::Removed, epath, &ea,
                     nullptr);
        }
        for (const Value &eb : ba) {
            const std::string &name = eb.at("name").asString();
            bool present = false;
            for (const Value &ea : aa) {
                if (ea.at("name").asString() == name) {
                    present = true;
                    break;
                }
            }
            if (!present)
                emit(out, SpecDifference::Kind::Added,
                     path + "[" + name + "]", nullptr, &eb);
        }
        return;
    }

    const size_t common = aa.size() < ba.size() ? aa.size() : ba.size();
    for (size_t i = 0; i < common; ++i)
        diffValues(aa[i], ba[i], path + "[" + std::to_string(i) + "]",
                   out);
    for (size_t i = common; i < aa.size(); ++i)
        emit(out, SpecDifference::Kind::Removed,
             path + "[" + std::to_string(i) + "]", &aa[i], nullptr);
    for (size_t i = common; i < ba.size(); ++i)
        emit(out, SpecDifference::Kind::Added,
             path + "[" + std::to_string(i) + "]", nullptr, &ba[i]);
}

void
diffValues(const Value &a, const Value &b, const std::string &path,
           std::vector<SpecDifference> &out)
{
    if (a.isObject() && b.isObject()) {
        diffObjects(a, b, path, out);
        return;
    }
    if (a.isArray() && b.isArray()) {
        diffArrays(a, b, path, out);
        return;
    }
    if (!sameValue(a, b))
        emit(out, SpecDifference::Kind::Changed, path, &a, &b);
}

} // namespace

std::vector<SpecDifference>
diffJsonValues(const Value &a, const Value &b)
{
    std::vector<SpecDifference> out;
    diffValues(a, b, "", out);
    return out;
}

std::vector<SpecDifference>
diffSpecs(const DesignSpec &a, const DesignSpec &b)
{
    return diffJsonValues(toJsonValue(a), toJsonValue(b));
}

std::string
formatSpecDiff(const std::vector<SpecDifference> &diffs)
{
    std::string out;
    for (const SpecDifference &d : diffs) {
        switch (d.kind) {
          case SpecDifference::Kind::Added:
            out += strprintf("+ %s = %s\n", d.path.c_str(),
                             d.after.c_str());
            break;
          case SpecDifference::Kind::Removed:
            out += strprintf("- %s = %s\n", d.path.c_str(),
                             d.before.c_str());
            break;
          case SpecDifference::Kind::Changed:
            out += strprintf("  %s: %s -> %s\n", d.path.c_str(),
                             d.before.c_str(), d.after.c_str());
            break;
        }
    }
    return out;
}

} // namespace camj::spec
