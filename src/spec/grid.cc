#include "spec/grid.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace camj::spec
{

using json::Value;

// ------------------------------------------------------------ paths

std::vector<SpecPathSegment>
parseSpecPath(const std::string &path)
{
    if (path.empty())
        fatal("sweepGrid: empty field path");
    std::vector<SpecPathSegment> segments;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t dot = path.find('.', pos);
        std::string token = path.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        SpecPathSegment seg;
        size_t open = token.find('[');
        if (open == std::string::npos) {
            seg.member = token;
        } else {
            if (token.back() != ']' || open + 2 > token.size() - 1)
                fatal("sweepGrid: path '%s': malformed selector in "
                      "segment '%s' (expected member[selector])",
                      path.c_str(), token.c_str());
            seg.member = token.substr(0, open);
            seg.selector =
                token.substr(open + 1, token.size() - open - 2);
            seg.hasSelector = true;
            if (seg.selector.empty())
                fatal("sweepGrid: path '%s': empty selector in "
                      "segment '%s'", path.c_str(), token.c_str());
        }
        if (seg.member.empty())
            fatal("sweepGrid: path '%s': empty member name",
                  path.c_str());
        segments.push_back(std::move(seg));
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return segments;
}

bool
isIndexSelector(const std::string &selector)
{
    for (char c : selector) {
        if (c < '0' || c > '9')
            return false;
    }
    return !selector.empty();
}

namespace
{

std::string
objectKeys(const Value &node)
{
    std::string keys;
    for (const auto &[k, v] : node.asObject())
        keys += (keys.empty() ? "" : ", ") + k;
    return keys.empty() ? "<empty>" : keys;
}

/** Select the elements a segment's selector names within @p arr. */
std::vector<Value *>
selectElements(Value &child, const SpecPathSegment &seg,
               const std::string &path)
{
    if (!child.isArray())
        fatal("sweepGrid: path '%s': member '%s' is not an array but "
              "carries selector '[%s]'", path.c_str(),
              seg.member.c_str(), seg.selector.c_str());
    auto &arr = child.mutableArray();
    std::vector<Value *> selected;
    if (seg.selector == "*") {
        for (Value &e : arr)
            selected.push_back(&e);
        if (selected.empty())
            fatal("sweepGrid: path '%s': '%s[*]' matches no elements "
                  "(the array is empty)", path.c_str(),
                  seg.member.c_str());
    } else if (isIndexSelector(seg.selector)) {
        // Over-long digit strings would overflow stoull; anything
        // past 12 digits can't index a real array anyway.
        if (seg.selector.size() > 12)
            fatal("sweepGrid: path '%s': index selector '[%s]' is "
                  "out of range", path.c_str(), seg.selector.c_str());
        size_t idx = static_cast<size_t>(std::stoull(seg.selector));
        if (idx >= arr.size())
            fatal("sweepGrid: path '%s': index %zu out of range "
                  "(array '%s' has %zu elements)", path.c_str(), idx,
                  seg.member.c_str(), arr.size());
        selected.push_back(&arr[idx]);
    } else {
        std::vector<std::string> names;
        for (Value &e : arr) {
            const Value *n = e.find("name");
            if (n != nullptr && n->isString()) {
                if (n->asString() == seg.selector) {
                    selected.push_back(&e);
                    continue;
                }
                names.push_back(n->asString());
            }
        }
        if (selected.empty())
            fatal("sweepGrid: path '%s': no element of '%s' is named "
                  "'%s' (elements: %s)", path.c_str(),
                  seg.member.c_str(), seg.selector.c_str(),
                  joinNames(names).c_str());
    }
    return selected;
}

/** Resolve the nodes a parsed path addresses within @p node, without
 *  writing anything — expansion resolves once and assigns per point.
 *  @throws ConfigError naming the path and the failing segment. */
void
collectTargets(Value &node, const std::vector<SpecPathSegment> &segments,
               size_t i, const std::string &path,
               std::vector<Value *> &out)
{
    const SpecPathSegment &seg = segments[i];
    if (!node.isObject())
        fatal("sweepGrid: path '%s': segment '%s' applied to a "
              "non-object value", path.c_str(), seg.member.c_str());
    Value *child = node.find(seg.member);
    if (child == nullptr)
        fatal("sweepGrid: path '%s': no member '%s' (object has: %s); "
              "to sweep an optional member, set it in the base spec "
              "first", path.c_str(), seg.member.c_str(),
              objectKeys(node).c_str());

    const bool last = i + 1 == segments.size();
    if (!seg.hasSelector) {
        if (last)
            out.push_back(child);
        else
            collectTargets(*child, segments, i + 1, path, out);
        return;
    }
    for (Value *element : selectElements(*child, seg, path)) {
        if (last)
            out.push_back(element);
        else
            collectTargets(*element, segments, i + 1, path, out);
    }
}

/** One parsed-path override: resolve, then assign @p value to every
 *  addressed node. */
void
applyParsed(Value &doc, const std::vector<SpecPathSegment> &segments,
            const Value &value, const std::string &path)
{
    std::vector<Value *> targets;
    collectTargets(doc, segments, 0, path, targets);
    for (Value *target : targets)
        *target = value;
}

/**
 * Could two parsed axis paths resolve to targets that are NOT
 * pairwise disjoint — one target containing the other (a path a
 * strict prefix of another), or two paths naming the very same node?
 * Conservative: false only when some level proves the paths diverge
 * (different members, or concrete same-kind selectors that differ).
 * An interference sends expansion down the clone-per-point path, so
 * a false positive costs speed, never correctness.
 */
bool
pathsMayInterfere(const std::vector<SpecPathSegment> &a,
                  const std::vector<SpecPathSegment> &b)
{
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        if (a[i].member != b[i].member)
            return false;
        // Two concrete selectors of one kind (both indices or both
        // element names) that differ pick distinct elements. A "*",
        // a member-vs-element mismatch, or an index-vs-name pair may
        // alias, so they prove nothing.
        if (a[i].hasSelector && b[i].hasSelector &&
            a[i].selector != "*" && b[i].selector != "*" &&
            a[i].selector != b[i].selector &&
            isIndexSelector(a[i].selector) ==
                isIndexSelector(b[i].selector))
            return false;
    }
    return true;
}

/** Render an axis value for a point name ("30", "sram", "true"). */
std::string
renderAxisValue(const Value &v)
{
    switch (v.type()) {
      case Value::Type::String:
        return v.asString();
      case Value::Type::Number:
        return strprintf("%g", v.asNumber());
      case Value::Type::Bool:
        return v.asBool() ? "true" : "false";
      default:
        return v.dump(0);
    }
}

} // namespace

// -------------------------------------------------------------- grid

size_t
SweepGrid::points() const
{
    if (!pointList.empty())
        return pointList.size();
    size_t n = 1;
    for (const GridAxis &axis : axes)
        n *= axis.values.size();
    return n;
}

void
SweepGrid::validate() const
{
    std::vector<std::string> seen;
    for (const GridAxis &axis : axes) {
        if (axis.name.empty())
            fatal("sweepGrid: an axis has an empty name");
        for (char c : axis.name) {
            if (c == '=' || c == ',' || c == '/')
                fatal("sweepGrid: axis name '%s' contains '%c' "
                      "(reserved for point-name encoding)",
                      axis.name.c_str(), c);
        }
        for (const std::string &s : seen) {
            if (s == axis.name)
                fatal("sweepGrid: duplicate axis name '%s'",
                      axis.name.c_str());
        }
        seen.push_back(axis.name);
        if (pointList.empty() && axis.values.empty())
            fatal("sweepGrid: axis '%s' has no values",
                  axis.name.c_str());
        parseSpecPath(axis.path); // throws on malformed paths
    }
    if (!pointList.empty()) {
        if (axes.empty())
            fatal("sweepGrid: a \"points\" list needs axes declaring "
                  "the field paths the tuples bind to");
        for (size_t i = 0; i < pointList.size(); ++i) {
            if (pointList[i].size() != axes.size())
                fatal("sweepGrid: point %zu has %zu value(s) but the "
                      "grid declares %zu axes", i,
                      pointList[i].size(), axes.size());
        }
    }
}

json::Value
gridToJson(const SweepGrid &grid)
{
    Value block = Value::makeObject();
    Value axes = Value::makeArray();
    for (const GridAxis &axis : grid.axes) {
        Value a = Value::makeObject();
        a.set("name", Value(axis.name));
        a.set("path", Value(axis.path));
        // Point-list grids may omit the per-axis value lists; keep
        // cartesian documents byte-stable by always emitting theirs.
        if (!axis.values.empty() || grid.pointList.empty()) {
            Value values = Value::makeArray();
            for (const Value &v : axis.values)
                values.push(v);
            a.set("values", std::move(values));
        }
        axes.push(std::move(a));
    }
    block.set("axes", std::move(axes));
    if (!grid.pointList.empty()) {
        Value points = Value::makeArray();
        for (const auto &tuple : grid.pointList) {
            Value t = Value::makeArray();
            for (const Value &v : tuple)
                t.push(v);
            points.push(std::move(t));
        }
        block.set("points", std::move(points));
    }
    return block;
}

SweepGrid
gridFromJson(const json::Value &block)
{
    SweepGrid grid;
    if (const Value *points = block.find("points")) {
        for (const Value &tuple : points->asArray()) {
            std::vector<Value> t;
            for (const Value &v : tuple.asArray())
                t.push_back(v);
            grid.pointList.push_back(std::move(t));
        }
    }
    for (const Value &a : block.at("axes").asArray()) {
        GridAxis axis;
        axis.name = a.at("name").asString();
        axis.path = a.at("path").asString();
        // "values" is optional when the grid declares explicit
        // points; validate() enforces it for cartesian grids.
        const Value *values =
            grid.pointList.empty() ? &a.at("values") : a.find("values");
        if (values != nullptr) {
            for (const Value &v : values->asArray())
                axis.values.push_back(v);
        }
        grid.axes.push_back(std::move(axis));
    }
    grid.validate();
    return grid;
}

void
applySpecOverride(json::Value &doc, const std::string &path,
                  const json::Value &value)
{
    applyParsed(doc, parseSpecPath(path), value, path);
}

// ---------------------------------------------------------- expansion

/** One reusable expansion buffer: a copy of the base document plus
 *  the per-axis override targets resolved into it once. Only valid
 *  while no write replaces a subtree containing a target — which is
 *  why interfering axes bypass the pool entirely. */
struct GridSpecSource::Workspace
{
    json::Value doc;
    /** Override targets per axis, resolved into doc (axis order). */
    std::vector<std::vector<json::Value *>> targets;
    /** The top-level "name" member (guaranteed present). */
    json::Value *name = nullptr;
};

GridSpecSource::GridSpecSource(const DesignSpec &base, SweepGrid grid)
    : baseDoc_(toJsonValue(base)), baseName_(base.name),
      grid_(std::move(grid))
{
    grid_.validate();
    total_ = grid_.points();
    // Every point overwrites the top-level "name"; make sure the
    // member exists up front so that write never GROWS the top-level
    // object (growth reallocates the member vector, which would
    // dangle any cached target that addresses a top-level member).
    if (baseDoc_.find("name") == nullptr)
        baseDoc_.set("name", Value(baseName_));
    axisPaths_.reserve(grid_.axes.size());
    for (const GridAxis &axis : grid_.axes)
        axisPaths_.push_back(parseSpecPath(axis.path));
    for (size_t a = 0; a < axisPaths_.size() && !axesMayInterfere_; ++a) {
        for (size_t b = a + 1; b < axisPaths_.size(); ++b) {
            if (pathsMayInterfere(axisPaths_[a], axisPaths_[b])) {
                axesMayInterfere_ = true;
                break;
            }
        }
    }
    if (!grid_.pointList.empty()) {
        // Explicit point list: probe each DISTINCT value per axis
        // against the base document, so a bad path or value fails
        // here with the axis and value named — not mid-sweep on a
        // worker — at O(distinct values) cost rather than one probe
        // per tuple (a 100k-point list stays cheap to open). This
        // matches the cartesian branch's coverage: per-value
        // validity is checked up front, cross-axis interactions
        // surface at expansion. One shared probe document, patched
        // in place and restored after each axis: targets are
        // re-resolved against the pristine document per axis, so
        // this is safe even for interfering axis paths.
        Value probe = baseDoc_;
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            std::vector<Value *> targets;
            collectTargets(probe, axisPaths_[a], 0,
                           grid_.axes[a].path, targets);
            std::vector<Value> saved;
            saved.reserve(targets.size());
            for (Value *t : targets)
                saved.push_back(*t);
            // Dedup by hash fast-path + structural equality.
            std::unordered_map<uint64_t, std::vector<const Value *>>
                seen;
            for (const auto &tuple : grid_.pointList) {
                const Value &v = tuple[a];
                auto &bucket = seen[v.hash()];
                bool dup = false;
                for (const Value *p : bucket) {
                    if (*p == v) {
                        dup = true;
                        break;
                    }
                }
                if (dup)
                    continue;
                bucket.push_back(&v);
                for (Value *t : targets)
                    *t = v;
                try {
                    fromJsonValue(probe);
                } catch (const ConfigError &e) {
                    fatal("sweepGrid: axis '%s' point-list value %s "
                          "does not produce a valid spec: %s",
                          grid_.axes[a].name.c_str(),
                          v.dump(0).c_str(), e.what());
                }
            }
            for (size_t i = 0; i < targets.size(); ++i)
                *targets[i] = saved[i];
        }
        return;
    }
    // Probe every axis value against the base document: the path
    // must resolve AND the overridden document must still parse as a
    // spec (a value of the wrong type, or an unknown enum token,
    // fails here with its axis named — not mid-sweep on a worker).
    // The probe document carries every axis's FRONT value; each
    // candidate value is patched in, checked, and the front
    // restored. With disjoint targets that is order-independent and
    // equal to the old clone-per-probe document.
    if (!axesMayInterfere_) {
        Value probe = baseDoc_;
        std::vector<std::vector<Value *>> targets(grid_.axes.size());
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            collectTargets(probe, axisPaths_[a], 0,
                           grid_.axes[a].path, targets[a]);
            for (Value *t : targets[a])
                *t = grid_.axes[a].values.front();
        }
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            for (const Value &v : grid_.axes[a].values) {
                for (Value *t : targets[a])
                    *t = v;
                try {
                    fromJsonValue(probe);
                } catch (const ConfigError &e) {
                    fatal("sweepGrid: axis '%s' value %s does not "
                          "produce a valid spec: %s",
                          grid_.axes[a].name.c_str(),
                          v.dump(0).c_str(), e.what());
                }
            }
            for (Value *t : targets[a])
                *t = grid_.axes[a].values.front();
        }
        return;
    }
    for (size_t a = 0; a < grid_.axes.size(); ++a) {
        for (const Value &v : grid_.axes[a].values) {
            Value probe = baseDoc_;
            for (size_t b = 0; b < grid_.axes.size(); ++b)
                applyParsed(probe, axisPaths_[b],
                            b == a ? v : grid_.axes[b].values.front(),
                            grid_.axes[b].path);
            try {
                fromJsonValue(probe);
            } catch (const ConfigError &e) {
                fatal("sweepGrid: axis '%s' value %s does not produce "
                      "a valid spec: %s", grid_.axes[a].name.c_str(),
                      v.dump(0).c_str(), e.what());
            }
        }
    }
}

GridSpecSource::GridSpecSource(const GridSpecSource &other)
    : baseDoc_(other.baseDoc_), baseName_(other.baseName_),
      grid_(other.grid_), axisPaths_(other.axisPaths_),
      axesMayInterfere_(other.axesMayInterfere_), total_(other.total_),
      cursor_(other.cursor_.load(std::memory_order_relaxed))
{
    // The workspace pool is per-instance (its targets point into its
    // owner's workspaces): the copy starts with an empty pool.
}

GridSpecSource::~GridSpecSource() = default;

std::unique_ptr<GridSpecSource::Workspace>
GridSpecSource::acquireWorkspace() const
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        if (!pool_.empty()) {
            std::unique_ptr<Workspace> ws = std::move(pool_.back());
            pool_.pop_back();
            return ws;
        }
    }
    auto ws = std::make_unique<Workspace>();
    ws->doc = baseDoc_;
    ws->targets.resize(grid_.axes.size());
    for (size_t a = 0; a < grid_.axes.size(); ++a)
        collectTargets(ws->doc, axisPaths_[a], 0, grid_.axes[a].path,
                       ws->targets[a]);
    ws->name = ws->doc.find("name");
    return ws;
}

void
GridSpecSource::releaseWorkspace(std::unique_ptr<Workspace> ws) const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    pool_.push_back(std::move(ws));
}

DesignSpec
GridSpecSource::at(size_t index) const
{
    if (index >= total_)
        fatal("GridSpecSource: point %zu out of range (grid has %zu "
              "points)", index, total_);
    // Resolve this point's coordinates (row-major for cartesian
    // grids: first axis outermost) and its encoded name suffix.
    std::vector<const Value *> coords(grid_.axes.size());
    std::string suffix;
    if (!grid_.pointList.empty()) {
        for (size_t a = 0; a < grid_.axes.size(); ++a)
            coords[a] = &grid_.pointList[index][a];
    } else {
        size_t stride = total_;
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            const GridAxis &axis = grid_.axes[a];
            stride /= axis.values.size();
            coords[a] = &axis.values[(index / stride) %
                                     axis.values.size()];
        }
    }
    for (size_t a = 0; a < grid_.axes.size(); ++a)
        suffix += (suffix.empty() ? "" : ",") + grid_.axes[a].name +
                  "=" + renderAxisValue(*coords[a]);

    if (!axesMayInterfere_) {
        // Fast path: patch a pooled workspace in place. Every target
        // plus the name is overwritten, so nothing from the previous
        // point survives and no undo records are needed. A throwing
        // spec parse simply drops the workspace (the pool re-seeds).
        std::unique_ptr<Workspace> ws = acquireWorkspace();
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            for (Value *t : ws->targets[a])
                *t = *coords[a];
        }
        if (!suffix.empty())
            *ws->name = Value(baseName_ + "/" + suffix);
        DesignSpec spec = fromJsonValue(ws->doc);
        releaseWorkspace(std::move(ws));
        return spec;
    }
    // Interfering axis paths (one a prefix of another, or two that
    // may alias one target): cached target pointers could dangle
    // inside a replaced subtree, so clone and re-resolve per point.
    Value doc = baseDoc_;
    for (size_t a = 0; a < grid_.axes.size(); ++a)
        applyParsed(doc, axisPaths_[a], *coords[a],
                    grid_.axes[a].path);
    if (!suffix.empty())
        doc.set("name", Value(baseName_ + "/" + suffix));
    return fromJsonValue(doc);
}

std::optional<std::vector<std::string>>
GridSpecSource::changedPaths(size_t from, size_t to) const
{
    if (from >= total_ || to >= total_)
        return std::nullopt;
    std::vector<std::string> paths;
    if (from == to)
        return paths;
    // Structural equality matches what the deterministic writer
    // preserves across save/load, so an axis listing the same value
    // twice correctly reports "unchanged" between those two
    // coordinates — and equal values render into equal name parts.
    auto differs = [](const Value &a, const Value &b) {
        return a != b;
    };
    if (!grid_.pointList.empty()) {
        for (size_t a = 0; a < grid_.axes.size(); ++a) {
            if (differs(grid_.pointList[from][a],
                        grid_.pointList[to][a]))
                paths.push_back(grid_.axes[a].path);
        }
    } else {
        size_t stride = total_;
        for (const GridAxis &axis : grid_.axes) {
            stride /= axis.values.size();
            const Value &va =
                axis.values[(from / stride) % axis.values.size()];
            const Value &vb =
                axis.values[(to / stride) % axis.values.size()];
            if (differs(va, vb))
                paths.push_back(axis.path);
        }
    }
    // Point names encode the coordinates, so they change exactly
    // when some axis value does.
    if (!paths.empty())
        paths.push_back("name");
    return paths;
}

std::optional<DesignSpec>
GridSpecSource::next()
{
    size_t index = 0;
    return nextIndexed(index);
}

std::optional<DesignSpec>
GridSpecSource::nextIndexed(size_t &index)
{
    const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_)
        return std::nullopt;
    index = i;
    return at(i);
}

std::vector<DesignSpec>
expandGrid(const DesignSpec &base, const SweepGrid &grid)
{
    GridSpecSource source(base, grid);
    std::vector<DesignSpec> specs;
    specs.reserve(grid.points());
    while (std::optional<DesignSpec> spec = source.next())
        specs.push_back(std::move(*spec));
    return specs;
}

// ---------------------------------------------------- sweep documents

SweepDocument
sweepDocumentFromJson(const std::string &text)
{
    Value doc = Value::parse(text);
    SweepDocument out;
    if (const Value *block = doc.find("sweepGrid"))
        out.grid = gridFromJson(*block);
    out.base = fromJsonValue(doc);
    return out;
}

std::string
toJson(const SweepDocument &doc)
{
    Value v = toJsonValue(doc.base);
    if (!doc.grid.axes.empty())
        v.set("sweepGrid", gridToJson(doc.grid));
    return v.dump(2) + "\n";
}

SweepDocument
loadSweepFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("spec: cannot open '%s' for reading", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return sweepDocumentFromJson(buf.str());
}

} // namespace camj::spec
