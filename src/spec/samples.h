/**
 * @file
 * Canonical sample DesignSpecs. One definition of the always-on QVGA
 * detector (pixel binning -> small in-sensor classifier) is shared by
 * the design_space_sweep example, the perf_simulator bench, and the
 * sweep tests, so the three never drift apart and perf numbers always
 * describe the same workload the tests pin down.
 */

#ifndef CAMJ_SPEC_SAMPLES_H
#define CAMJ_SPEC_SAMPLES_H

#include <vector>

#include "spec/grid.h"
#include "spec/spec.h"

namespace camj::spec
{

/**
 * An always-on QVGA detection sensor: 4x4 pixel binning in the array,
 * column ADCs, and an 8x8 systolic classifier behind a double buffer,
 * with tech-scaled analog supply and MAC energy/area at @p node_nm.
 * Transmits only a 4-byte class label over MIPI.
 *
 * @param fps Target frame rate; extreme rates cross the feasibility
 *        boundary (the classifier's latency overruns the budget).
 * @param node_nm CIS process node (e.g. 180/110/65/45).
 * @throws ConfigError for nodes the scaling tables don't cover.
 */
DesignSpec sampleDetectorSpec(double fps, int node_nm);

/**
 * The fps x node sweep grid over sampleDetectorSpec, in row-major
 * (node-outer) order — deliberately spanning both sides of the
 * feasibility boundary.
 */
std::vector<DesignSpec> sampleDetectorGrid(
    const std::vector<int> &nodes, const std::vector<double> &rates);

/**
 * The canonical 108-point design-space study: sampleDetectorSpec(30,
 * 65) swept over frame rate (9 values), buffer process node (4), and
 * buffer duty cycle (3) as a sweepGrid document. The ONE definition
 * shared by the grid_sweep and sharded_sweep examples, the
 * perf_simulator sharded section, and the checked-in
 * examples/detector_sweep.json (which is its toJson() output
 * verbatim — regenerate the file from this function when the study
 * changes).
 */
SweepDocument sampleDetectorStudy();

} // namespace camj::spec

#endif // CAMJ_SPEC_SAMPLES_H
