/**
 * @file
 * A minimal, dependency-free JSON value type with a hand-rolled
 * recursive-descent parser and a deterministic writer. Only what the
 * DesignSpec serialization needs: null/bool/number/string/array/object,
 * insertion-ordered objects (stable round-trips), and %.17g number
 * formatting so doubles survive save/load bit-exactly.
 *
 * Storage is COMPACT: a Value is a type tag plus an 8-byte payload
 * (the bool/double inline, strings/arrays/objects behind one owning
 * pointer), so a Number node costs 16 bytes instead of the ~120 of
 * the old every-payload-inline layout, and moving a container Value
 * is a pointer swap. Sweep expansion clones and compares millions of
 * these; the layout is a measured hot-path win (bench/perf_simulator
 * `specOps` section).
 *
 * Structural comparison is first-class: operator== and a streamed
 * 64-bit hash() agree with the deterministic writer — for any two
 * serializable values, a == b exactly when a.dump(0) == b.dump(0)
 * (pinned by tests/json_test.cc). Numbers compare numerically with
 * -0.0 == 0.0 (the writer renders both as "0") and NaN == NaN (so ==
 * stays an equivalence relation; NaN cannot be serialized at all).
 * hash() canonicalizes -0.0 and NaN accordingly: a == b implies
 * hash() equality, so hashes are sound cache-key fast-paths as long
 * as a full structural-equality verify backs them.
 *
 * Errors are reported through the library-wide ConfigError (a malformed
 * spec file is a user configuration problem, like any other bad design
 * description).
 */

#ifndef CAMJ_SPEC_JSON_H
#define CAMJ_SPEC_JSON_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace camj::json
{

/** fnv-1a offset basis: the seed of every streamed hash chain. */
inline constexpr uint64_t kHashSeed = 1469598103934665603ull;

/** Mix @p len bytes into an fnv-1a chain started from @p h. */
uint64_t hashBytes(uint64_t h, const void *data, size_t len);

/** One JSON value; a tree of these represents a document. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Ordered key/value storage: preserves author ordering. */
    using Object = std::vector<std::pair<std::string, Value>>;
    using Array = std::vector<Value>;

    Value() noexcept : type_(Type::Null) { payload_.num = 0.0; }
    Value(bool b) : type_(Type::Bool) { payload_.boolean = b; }
    Value(double d) : type_(Type::Number) { payload_.num = d; }
    Value(int i) : type_(Type::Number) { payload_.num = i; }
    Value(int64_t i) : type_(Type::Number)
    {
        payload_.num = static_cast<double>(i);
    }
    Value(const char *s) : type_(Type::String)
    {
        payload_.str = new std::string(s);
    }
    Value(std::string s) : type_(Type::String)
    {
        payload_.str = new std::string(std::move(s));
    }

    ~Value() { destroy(); }

    Value(const Value &other);
    Value(Value &&other) noexcept
        : type_(other.type_), payload_(other.payload_)
    {
        other.type_ = Type::Null;
        other.payload_.num = 0.0;
    }
    Value &operator=(const Value &other);
    Value &operator=(Value &&other) noexcept;

    /** An empty array value. */
    static Value makeArray();
    /** An empty object value. */
    static Value makeObject();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @throws ConfigError if the value is not of the asked type. */
    bool asBool() const;
    double asNumber() const;
    /** Number as a (rounded) 64-bit integer. */
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    // ----- structural comparison -----

    /**
     * Structural equality: same type, same members in the same order.
     * Numbers compare numerically with -0.0 == 0.0 and NaN == NaN;
     * for any two serializable values this is exactly dump(0)
     * equality, without serializing anything.
     */
    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const
    {
        return !(*this == other);
    }

    /**
     * Streamed 64-bit structural hash (fnv-1a over a canonical byte
     * encoding; no intermediate string is built). a == b implies
     * a.hash(s) == b.hash(s) for any seed @p seed. A hash is a cache
     * FAST-PATH only — always verify candidates with operator==.
     */
    uint64_t hash(uint64_t seed = kHashSeed) const;

    // ----- array building -----

    /** Append to an array (converts a Null value into an array). */
    void push(Value v);

    /** Pre-size an array's or object's member storage.
     *  @throws ConfigError on any other value type. */
    void reserve(size_t n);

    // ----- object access -----

    /** True when an object has @p key. */
    bool has(const std::string &key) const;

    /**
     * Member lookup. @throws ConfigError when absent or not an
     * object; the error lists the keys that do exist.
     */
    const Value &at(const std::string &key) const;

    /** Member lookup returning nullptr when absent. */
    const Value *find(const std::string &key) const;

    /** Mutable member lookup, for in-place document edits (e.g. grid
     *  expansion overriding one field of a cloned spec document). */
    Value *find(const std::string &key);

    /** Mutable element access. @throws ConfigError unless an array. */
    Array &mutableArray();

    /** Mutable member storage, for structural document edits (e.g.
     *  spec-diff application removing a member).
     *  @throws ConfigError unless an object. */
    Object &mutableObject();

    /** Set/overwrite a member (converts a Null value into an object).
     *  Move-aware in both the key and the value. */
    void set(std::string key, Value v);

    // ----- typed object getters with defaults -----

    double getNumber(const std::string &key, double fallback) const;
    int64_t getInt(const std::string &key, int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /**
     * Serialize. @param indent Spaces per nesting level; 0 renders a
     * single line. Numbers use %.17g, so doubles round-trip exactly.
     */
    std::string dump(int indent = 2) const;

    /**
     * Parse a JSON document.
     *
     * @throws ConfigError with line/column context on syntax errors.
     */
    static Value parse(const std::string &text);

  private:
    union Payload
    {
        bool boolean;
        double num;
        std::string *str;
        Array *arr;
        Object *obj;
    };

    Type type_;
    Payload payload_;

    void destroy() noexcept;
    void copyFrom(const Value &other);
    void dumpTo(std::string &out, int indent, int depth) const;
};

} // namespace camj::json

#endif // CAMJ_SPEC_JSON_H
