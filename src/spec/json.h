/**
 * @file
 * A minimal, dependency-free JSON value type with a hand-rolled
 * recursive-descent parser and a deterministic writer. Only what the
 * DesignSpec serialization needs: null/bool/number/string/array/object,
 * insertion-ordered objects (stable round-trips), and %.17g number
 * formatting so doubles survive save/load bit-exactly.
 *
 * Errors are reported through the library-wide ConfigError (a malformed
 * spec file is a user configuration problem, like any other bad design
 * description).
 */

#ifndef CAMJ_SPEC_JSON_H
#define CAMJ_SPEC_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace camj::json
{

/** One JSON value; a tree of these represents a document. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Ordered key/value storage: preserves author ordering. */
    using Object = std::vector<std::pair<std::string, Value>>;
    using Array = std::vector<Value>;

    Value() : type_(Type::Null) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double d) : type_(Type::Number), num_(d) {}
    Value(int i) : type_(Type::Number), num_(i) {}
    Value(int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
    Value(const char *s) : type_(Type::String), str_(s) {}
    Value(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array value. */
    static Value makeArray();
    /** An empty object value. */
    static Value makeObject();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @throws ConfigError if the value is not of the asked type. */
    bool asBool() const;
    double asNumber() const;
    /** Number as a (rounded) 64-bit integer. */
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    // ----- array building -----

    /** Append to an array (converts a Null value into an array). */
    void push(Value v);

    // ----- object access -----

    /** True when an object has @p key. */
    bool has(const std::string &key) const;

    /**
     * Member lookup. @throws ConfigError when absent or not an
     * object; the error lists the keys that do exist.
     */
    const Value &at(const std::string &key) const;

    /** Member lookup returning nullptr when absent. */
    const Value *find(const std::string &key) const;

    /** Mutable member lookup, for in-place document edits (e.g. grid
     *  expansion overriding one field of a cloned spec document). */
    Value *find(const std::string &key);

    /** Mutable element access. @throws ConfigError unless an array. */
    Array &mutableArray();

    /** Mutable member storage, for structural document edits (e.g.
     *  spec-diff application removing a member).
     *  @throws ConfigError unless an object. */
    Object &mutableObject();

    /** Set/overwrite a member (converts a Null value into an object). */
    void set(const std::string &key, Value v);

    // ----- typed object getters with defaults -----

    double getNumber(const std::string &key, double fallback) const;
    int64_t getInt(const std::string &key, int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /**
     * Serialize. @param indent Spaces per nesting level; 0 renders a
     * single line. Numbers use %.17g, so doubles round-trip exactly.
     */
    std::string dump(int indent = 2) const;

    /**
     * Parse a JSON document.
     *
     * @throws ConfigError with line/column context on syntax errors.
     */
    static Value parse(const std::string &text);

  private:
    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

} // namespace camj::json

#endif // CAMJ_SPEC_JSON_H
