/**
 * @file
 * Field-level spec diffing — the first step of the spec diff/merge
 * toolchain, and the debugging companion of SweepGrid expansion: the
 * paths it prints ("memories[ActBuf].nodeNm") are exactly the paths
 * a grid axis declares, so diffing a base spec against one expanded
 * point shows precisely what the axis changed.
 *
 * The diff walks the serialized JSON trees, so it covers every field
 * the spec format covers, by construction. Arrays whose elements all
 * carry unique "name" members (stages, analogArrays, memories, units)
 * are matched BY NAME — reordering reports as add+remove, and a
 * renamed memory doesn't cascade into dozens of false field edits —
 * everything else is matched by index.
 */

#ifndef CAMJ_SPEC_DIFF_H
#define CAMJ_SPEC_DIFF_H

#include <string>
#include <vector>

#include "spec/json.h"
#include "spec/spec.h"

namespace camj::spec
{

/** One elementary difference between two specs. */
struct SpecDifference
{
    enum class Kind
    {
        /** The field exists only in the second spec. */
        Added,
        /** The field exists only in the first spec. */
        Removed,
        /** The field exists in both with different values. */
        Changed,
    };

    /** "Not an array insertion" marker for position. */
    static constexpr size_t kNoPosition = static_cast<size_t>(-1);

    Kind kind = Kind::Changed;
    /** Grid-axis-style field path ("fps", "memories[Buf].nodeNm"). */
    std::string path;
    /** Compact JSON of the first spec's value ("" when Added). */
    std::string before;
    /** Compact JSON of the second spec's value ("" when Removed). */
    std::string after;
    /** Added array elements: the element's index in the SECOND
     *  spec's array, so applyDiff can insert rather than append
     *  (kNoPosition for member additions). */
    size_t position = kNoPosition;
};

/** Diff two parsed JSON documents (any shape). */
std::vector<SpecDifference> diffJsonValues(const json::Value &a,
                                           const json::Value &b);

/** Diff two specs through their serialized form. */
std::vector<SpecDifference> diffSpecs(const DesignSpec &a,
                                      const DesignSpec &b);

/**
 * Render differences as aligned "path: before -> after" lines, with
 * +/- prefixes for added/removed fields; "" for an empty diff.
 */
std::string formatSpecDiff(const std::vector<SpecDifference> &diffs);

// ------------------------------------------------------- serialization

/** Diff -> its shippable JSON document: {"camjSpecDiff": 1,
 *  "changes": [{"kind", "path", "before", "after"}, ...]}. */
json::Value diffToJsonValue(const std::vector<SpecDifference> &diffs);
std::string diffToJson(const std::vector<SpecDifference> &diffs);

/** JSON diff document -> differences. @throws ConfigError on unknown
 *  kinds or missing members. */
std::vector<SpecDifference> diffFromJsonValue(const json::Value &doc);
std::vector<SpecDifference> diffFromJson(const std::string &text);

// --------------------------------------------------------------- merge

/**
 * Apply a diff to a parsed spec document IN PLACE — the inverse of
 * diffJsonValues: applying diff(a, b) to a reproduces b (up to
 * canonical member order; re-serialize through fromJsonValue /
 * toJsonValue for byte equality, as applyDiff does).
 *
 * Changed fields are verified against their recorded "before" value
 * and replaced; Added fields are appended (new object members at the
 * end, new array elements after the existing ones); Removed fields
 * are verified and deleted. Index-keyed removals are applied
 * highest-index-first so earlier removals cannot shift later ones.
 *
 * @throws ConfigError when the diff does not fit the document (a
 *         path fails to resolve, or a before-value does not match —
 *         the diff was taken against a different base).
 */
void applyDiffToJson(json::Value &doc,
                     const std::vector<SpecDifference> &diffs);

/**
 * The spec-level inverse of diffSpecs: for any two valid specs,
 * applyDiff(a, diffSpecs(a, b)) equals b exactly (toJson-byte
 * equality; pinned over the golden studies by tests/specdiff_test).
 *
 * @throws ConfigError when the diff does not fit @p base or the
 *         patched document no longer parses as a spec.
 */
DesignSpec applyDiff(const DesignSpec &base,
                     const std::vector<SpecDifference> &diffs);

} // namespace camj::spec

#endif // CAMJ_SPEC_DIFF_H
