/**
 * @file
 * Field-level spec diffing — the first step of the spec diff/merge
 * toolchain, and the debugging companion of SweepGrid expansion: the
 * paths it prints ("memories[ActBuf].nodeNm") are exactly the paths
 * a grid axis declares, so diffing a base spec against one expanded
 * point shows precisely what the axis changed.
 *
 * The diff walks the serialized JSON trees, so it covers every field
 * the spec format covers, by construction. Arrays whose elements all
 * carry unique "name" members (stages, analogArrays, memories, units)
 * are matched BY NAME — reordering reports as add+remove, and a
 * renamed memory doesn't cascade into dozens of false field edits —
 * everything else is matched by index.
 */

#ifndef CAMJ_SPEC_DIFF_H
#define CAMJ_SPEC_DIFF_H

#include <string>
#include <vector>

#include "spec/json.h"
#include "spec/spec.h"

namespace camj::spec
{

/** One elementary difference between two specs. */
struct SpecDifference
{
    enum class Kind
    {
        /** The field exists only in the second spec. */
        Added,
        /** The field exists only in the first spec. */
        Removed,
        /** The field exists in both with different values. */
        Changed,
    };

    Kind kind = Kind::Changed;
    /** Grid-axis-style field path ("fps", "memories[Buf].nodeNm"). */
    std::string path;
    /** Compact JSON of the first spec's value ("" when Added). */
    std::string before;
    /** Compact JSON of the second spec's value ("" when Removed). */
    std::string after;
};

/** Diff two parsed JSON documents (any shape). */
std::vector<SpecDifference> diffJsonValues(const json::Value &a,
                                           const json::Value &b);

/** Diff two specs through their serialized form. */
std::vector<SpecDifference> diffSpecs(const DesignSpec &a,
                                      const DesignSpec &b);

/**
 * Render differences as aligned "path: before -> after" lines, with
 * +/- prefixes for added/removed fields; "" for an empty diff.
 */
std::string formatSpecDiff(const std::vector<SpecDifference> &diffs);

} // namespace camj::spec

#endif // CAMJ_SPEC_DIFF_H
