#include "spec/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace camj::json
{

uint64_t
hashBytes(uint64_t h, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull; // fnv-1a prime
    }
    return h;
}

// ----------------------------------------------------- special members

void
Value::destroy() noexcept
{
    switch (type_) {
      case Type::String: delete payload_.str; break;
      case Type::Array: delete payload_.arr; break;
      case Type::Object: delete payload_.obj; break;
      default: break;
    }
}

void
Value::copyFrom(const Value &other)
{
    type_ = other.type_;
    switch (type_) {
      case Type::String:
        payload_.str = new std::string(*other.payload_.str);
        break;
      case Type::Array:
        payload_.arr = new Array(*other.payload_.arr);
        break;
      case Type::Object:
        payload_.obj = new Object(*other.payload_.obj);
        break;
      default:
        payload_ = other.payload_;
        break;
    }
}

Value::Value(const Value &other) { copyFrom(other); }

Value &
Value::operator=(const Value &other)
{
    if (this != &other) {
        // Copy before destroy: self-referential assignments like
        // `doc = doc.at("child")` must read the source intact.
        Value tmp(other);
        destroy();
        type_ = tmp.type_;
        payload_ = tmp.payload_;
        tmp.type_ = Type::Null;
        tmp.payload_.num = 0.0;
    }
    return *this;
}

Value &
Value::operator=(Value &&other) noexcept
{
    if (this != &other) {
        destroy();
        type_ = other.type_;
        payload_ = other.payload_;
        other.type_ = Type::Null;
        other.payload_.num = 0.0;
    }
    return *this;
}

Value
Value::makeArray()
{
    Value v;
    v.type_ = Type::Array;
    v.payload_.arr = new Array();
    return v;
}

Value
Value::makeObject()
{
    Value v;
    v.type_ = Type::Object;
    v.payload_.obj = new Object();
    return v;
}

namespace
{

const char *
typeName(Value::Type t)
{
    switch (t) {
      case Value::Type::Null: return "null";
      case Value::Type::Bool: return "bool";
      case Value::Type::Number: return "number";
      case Value::Type::String: return "string";
      case Value::Type::Array: return "array";
      case Value::Type::Object: return "object";
    }
    return "?";
}

} // namespace

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: expected bool, got %s", typeName(type_));
    return payload_.boolean;
}

double
Value::asNumber() const
{
    if (type_ != Type::Number)
        fatal("json: expected number, got %s", typeName(type_));
    return payload_.num;
}

int64_t
Value::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        fatal("json: expected string, got %s", typeName(type_));
    return *payload_.str;
}

const Value::Array &
Value::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: expected array, got %s", typeName(type_));
    return *payload_.arr;
}

const Value::Object &
Value::asObject() const
{
    if (type_ != Type::Object)
        fatal("json: expected object, got %s", typeName(type_));
    return *payload_.obj;
}

// --------------------------------------------------------- comparison

bool
Value::operator==(const Value &other) const
{
    if (this == &other)
        return true;
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return payload_.boolean == other.payload_.boolean;
      case Type::Number: {
        const double a = payload_.num;
        const double b = other.payload_.num;
        // Numeric equality makes -0.0 == 0.0 (both dump as "0");
        // NaN == NaN keeps == an equivalence relation (NaN never
        // serializes — dump() rejects non-finite numbers).
        return a == b || (std::isnan(a) && std::isnan(b));
      }
      case Type::String:
        return *payload_.str == *other.payload_.str;
      case Type::Array: {
        const Array &a = *payload_.arr;
        const Array &b = *other.payload_.arr;
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i) {
            if (a[i] != b[i])
                return false;
        }
        return true;
      }
      case Type::Object: {
        const Object &a = *payload_.obj;
        const Object &b = *other.payload_.obj;
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].first != b[i].first ||
                a[i].second != b[i].second)
                return false;
        }
        return true;
      }
    }
    return false;
}

uint64_t
Value::hash(uint64_t seed) const
{
    uint64_t h = seed;
    const auto tag = static_cast<unsigned char>(type_);
    h = hashBytes(h, &tag, 1);
    switch (type_) {
      case Type::Null:
        break;
      case Type::Bool: {
        const unsigned char b = payload_.boolean ? 1 : 0;
        h = hashBytes(h, &b, 1);
        break;
      }
      case Type::Number: {
        // Canonicalize the cases where distinct bit patterns compare
        // equal, so a == b implies equal hashes.
        double d = payload_.num;
        if (d == 0.0)
            d = 0.0;
        else if (std::isnan(d))
            d = std::numeric_limits<double>::quiet_NaN();
        h = hashBytes(h, &d, sizeof(d));
        break;
      }
      case Type::String: {
        const std::string &s = *payload_.str;
        const uint64_t n = s.size();
        h = hashBytes(h, &n, sizeof(n));
        h = hashBytes(h, s.data(), s.size());
        break;
      }
      case Type::Array: {
        const Array &a = *payload_.arr;
        const uint64_t n = a.size();
        h = hashBytes(h, &n, sizeof(n));
        for (const Value &v : a)
            h = v.hash(h);
        break;
      }
      case Type::Object: {
        const Object &o = *payload_.obj;
        const uint64_t n = o.size();
        h = hashBytes(h, &n, sizeof(n));
        for (const auto &[k, v] : o) {
            const uint64_t kn = k.size();
            h = hashBytes(h, &kn, sizeof(kn));
            h = hashBytes(h, k.data(), k.size());
            h = v.hash(h);
        }
        break;
      }
    }
    return h;
}

// ----------------------------------------------------------- mutation

void
Value::push(Value v)
{
    if (type_ == Type::Null) {
        type_ = Type::Array;
        payload_.arr = new Array();
    }
    if (type_ != Type::Array)
        fatal("json: push on a %s value", typeName(type_));
    payload_.arr->push_back(std::move(v));
}

void
Value::reserve(size_t n)
{
    if (type_ == Type::Array)
        payload_.arr->reserve(n);
    else if (type_ == Type::Object)
        payload_.obj->reserve(n);
    else
        fatal("json: reserve on a %s value", typeName(type_));
}

bool
Value::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : *payload_.obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value *
Value::find(const std::string &key)
{
    return const_cast<Value *>(
        static_cast<const Value *>(this)->find(key));
}

Value::Array &
Value::mutableArray()
{
    if (type_ != Type::Array)
        fatal("json: expected array, got %s", typeName(type_));
    return *payload_.arr;
}

Value::Object &
Value::mutableObject()
{
    if (type_ != Type::Object)
        fatal("json: expected object, got %s", typeName(type_));
    return *payload_.obj;
}

const Value &
Value::at(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("json: member '%s' requested from a %s value",
              key.c_str(), typeName(type_));
    if (const Value *v = find(key))
        return *v;
    std::string keys;
    for (const auto &[k, v] : *payload_.obj)
        keys += (keys.empty() ? "" : ", ") + k;
    fatal("json: missing member '%s' (object has: %s)", key.c_str(),
          keys.empty() ? "<empty>" : keys.c_str());
}

void
Value::set(std::string key, Value v)
{
    if (type_ == Type::Null) {
        type_ = Type::Object;
        payload_.obj = new Object();
    }
    if (type_ != Type::Object)
        fatal("json: set on a %s value", typeName(type_));
    for (auto &[k, old] : *payload_.obj) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    payload_.obj->emplace_back(std::move(key), std::move(v));
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v ? v->asNumber() : fallback;
}

int64_t
Value::getInt(const std::string &key, int64_t fallback) const
{
    const Value *v = find(key);
    return v ? v->asInt() : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v ? v->asBool() : fallback;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = find(key);
    return v ? v->asString() : fallback;
}

// ------------------------------------------------------------- writing

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    // Single pass: copy maximal runs of plain characters in one
    // append; only the rare escape goes through the switch.
    size_t start = 0;
    const size_t n = s.size();
    for (size_t i = 0; i < n; ++i) {
        const auto c = static_cast<unsigned char>(s[i]);
        if (c != '"' && c != '\\' && c >= 0x20)
            continue;
        out.append(s, start, i - start);
        start = i + 1;
        switch (s[i]) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          }
        }
    }
    out.append(s, start, n - start);
    out += '"';
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d))
        fatal("json: cannot serialize a non-finite number");
    // Integers up to 2^53 print without an exponent for readability;
    // everything else uses %.17g for exact double round-trips.
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
appendNewline(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent * depth), ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += payload_.boolean ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, payload_.num);
        break;
      case Type::String:
        appendEscaped(out, *payload_.str);
        break;
      case Type::Array: {
        const Array &arr = *payload_.arr;
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < arr.size(); ++i) {
            if (i > 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        const Object &obj = *payload_.obj;
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < obj.size(); ++i) {
            if (i > 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            appendEscaped(out, obj[i].first);
            out += indent > 0 ? ": " : ":";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ------------------------------------------------------------- parsing

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing characters after the JSON document");
        return v;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        int line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json parse error at line %d, column %d: %s", line, col,
              what.c_str());
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal '") + lit + "'");
            ++pos_;
        }
    }

    Value
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            expectLiteral("true");
            return Value(true);
          case 'f':
            expectLiteral("false");
            return Value(false);
          case 'n':
            expectLiteral("null");
            return Value();
          default:
            return parseNumber();
        }
    }

    // Spec documents are dominated by small component objects and
    // axis-value arrays; pre-sizing their member vectors to a few
    // slots removes most of the grow-reallocate churn without
    // over-reserving leaf containers.
    static constexpr size_t kContainerReserve = 8;

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::makeObject();
        if (consumeIf('}'))
            return obj;
        obj.reserve(kContainerReserve);
        while (true) {
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            expect(':');
            if (obj.has(key))
                fail("duplicate object key '" + key + "'");
            obj.set(std::move(key), parseValue());
            if (consumeIf(','))
                continue;
            expect('}');
            return obj;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::makeArray();
        if (consumeIf(']'))
            return arr;
        arr.reserve(kContainerReserve);
        while (true) {
            arr.push(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            // Copy the maximal run of plain characters in one append.
            size_t run = pos_;
            while (run < text_.size()) {
                const auto c = static_cast<unsigned char>(text_[run]);
                if (c == '"' || c == '\\' || c < 0x20)
                    break;
                ++run;
            }
            out.append(text_, pos_, run - pos_);
            pos_ = run;
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (pos_ >= text_.size())
                fail("unterminated escape sequence");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default:
                fail(std::string("invalid escape '\\") + e + "'");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code += static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are not
        // needed by spec files; reject them explicitly).
        if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate pairs are not supported in spec files");
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    Value
    parseNumber()
    {
        skipWhitespace();
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            size_t exp_start = pos_;
            eatDigits();
            if (pos_ == exp_start)
                fail("malformed exponent");
        }
        if (!digits)
            fail("invalid value");
        // The token shape is validated, so strtod can run directly on
        // the NUL-terminated source buffer with no substr copy.
        const char *tok = text_.c_str() + start;
        char *end = nullptr;
        double d = std::strtod(tok, &end);
        const size_t len = pos_ - start;
        if (end != tok + len) {
            // strtod accepts a wider grammar (hex floats, inf/nan);
            // when it reads past our token, re-parse just the token
            // so "0x12" still reports "trailing characters" exactly
            // like the shape validator implies.
            std::string token = text_.substr(start, len);
            end = nullptr;
            d = std::strtod(token.c_str(), &end);
            if (end != token.c_str() + token.size())
                fail("malformed number '" + token + "'");
        }
        return Value(d);
    }
};

} // namespace

Value
Value::parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace camj::json
