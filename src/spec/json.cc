#include "spec/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace camj::json
{

Value
Value::makeArray()
{
    Value v;
    v.type_ = Type::Array;
    return v;
}

Value
Value::makeObject()
{
    Value v;
    v.type_ = Type::Object;
    return v;
}

namespace
{

const char *
typeName(Value::Type t)
{
    switch (t) {
      case Value::Type::Null: return "null";
      case Value::Type::Bool: return "bool";
      case Value::Type::Number: return "number";
      case Value::Type::String: return "string";
      case Value::Type::Array: return "array";
      case Value::Type::Object: return "object";
    }
    return "?";
}

} // namespace

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: expected bool, got %s", typeName(type_));
    return bool_;
}

double
Value::asNumber() const
{
    if (type_ != Type::Number)
        fatal("json: expected number, got %s", typeName(type_));
    return num_;
}

int64_t
Value::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        fatal("json: expected string, got %s", typeName(type_));
    return str_;
}

const Value::Array &
Value::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: expected array, got %s", typeName(type_));
    return arr_;
}

const Value::Object &
Value::asObject() const
{
    if (type_ != Type::Object)
        fatal("json: expected object, got %s", typeName(type_));
    return obj_;
}

void
Value::push(Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        fatal("json: push on a %s value", typeName(type_));
    arr_.push_back(std::move(v));
}

bool
Value::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value *
Value::find(const std::string &key)
{
    return const_cast<Value *>(
        static_cast<const Value *>(this)->find(key));
}

Value::Array &
Value::mutableArray()
{
    if (type_ != Type::Array)
        fatal("json: expected array, got %s", typeName(type_));
    return arr_;
}

Value::Object &
Value::mutableObject()
{
    if (type_ != Type::Object)
        fatal("json: expected object, got %s", typeName(type_));
    return obj_;
}

const Value &
Value::at(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("json: member '%s' requested from a %s value",
              key.c_str(), typeName(type_));
    if (const Value *v = find(key))
        return *v;
    std::string keys;
    for (const auto &[k, v] : obj_)
        keys += (keys.empty() ? "" : ", ") + k;
    fatal("json: missing member '%s' (object has: %s)", key.c_str(),
          keys.empty() ? "<empty>" : keys.c_str());
}

void
Value::set(const std::string &key, Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fatal("json: set on a %s value", typeName(type_));
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v ? v->asNumber() : fallback;
}

int64_t
Value::getInt(const std::string &key, int64_t fallback) const
{
    const Value *v = find(key);
    return v ? v->asInt() : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v ? v->asBool() : fallback;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = find(key);
    return v ? v->asString() : fallback;
}

// ------------------------------------------------------------- writing

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d))
        fatal("json: cannot serialize a non-finite number");
    // Integers up to 2^53 print without an exponent for readability;
    // everything else uses %.17g for exact double round-trips.
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
appendNewline(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent * depth), ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, num_);
        break;
      case Type::String:
        appendEscaped(out, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            appendEscaped(out, obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ------------------------------------------------------------- parsing

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing characters after the JSON document");
        return v;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        int line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json parse error at line %d, column %d: %s", line, col,
              what.c_str());
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal '") + lit + "'");
            ++pos_;
        }
    }

    Value
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            expectLiteral("true");
            return Value(true);
          case 'f':
            expectLiteral("false");
            return Value(false);
          case 'n':
            expectLiteral("null");
            return Value();
          default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::makeObject();
        if (consumeIf('}'))
            return obj;
        while (true) {
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            expect(':');
            if (obj.has(key))
                fail("duplicate object key '" + key + "'");
            obj.set(key, parseValue());
            if (consumeIf(','))
                continue;
            expect('}');
            return obj;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::makeArray();
        if (consumeIf(']'))
            return arr;
        while (true) {
            arr.push(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape sequence");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default:
                fail(std::string("invalid escape '\\") + e + "'");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code += static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are not
        // needed by spec files; reject them explicitly).
        if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate pairs are not supported in spec files");
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    Value
    parseNumber()
    {
        skipWhitespace();
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            size_t exp_start = pos_;
            eatDigits();
            if (pos_ == exp_start)
                fail("malformed exponent");
        }
        if (!digits)
            fail("invalid value");
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("malformed number '" + token + "'");
        return Value(d);
    }
};

} // namespace

Value
Value::parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace camj::json
