/**
 * @file
 * DesignBuilder: the fluent front-end for assembling a DesignSpec.
 *
 * Every call validates incrementally — duplicate names, dangling
 * references, and arity mistakes surface at the call site instead of
 * deep inside simulate(). The builder produces either the plain-data
 * DesignSpec (spec()) for serialization/sweeping, or a materialized
 * Design (build()) ready to simulate. The raw Design setter API
 * remains available but is considered an internal layer.
 *
 *   Design d = DesignBuilder("fig5")
 *                  .fps(30.0)
 *                  .digitalClock(10e6)
 *                  .inputStage("Input", {32, 32, 1})
 *                  .stage({.name = "Edge", ...}, {"Input"})
 *                  .analogArray({...})
 *                  .sram("LineBuffer", ...)
 *                  .computeUnit({...}, {"LineBuffer"}, {})
 *                  .adcOutput("LineBuffer")
 *                  .mipi()
 *                  .map("Input", "PixelArray")
 *                  .map("Edge", "EdgeUnit")
 *                  .build();
 */

#ifndef CAMJ_SPEC_BUILDER_H
#define CAMJ_SPEC_BUILDER_H

#include <string>
#include <vector>

#include "spec/spec.h"

namespace camj::spec
{

/** Fluent, incrementally validated DesignSpec assembler. */
class DesignBuilder
{
  public:
    /** @throws ConfigError on an empty name. */
    explicit DesignBuilder(std::string design_name);

    /** Start from an existing spec (e.g. to derive a variant).
     *  @throws ConfigError if the spec fails validation. */
    explicit DesignBuilder(DesignSpec spec);

    // ----- top-level parameters -----

    /** @throws ConfigError unless positive. */
    DesignBuilder &fps(double value);
    /** @throws ConfigError unless positive. */
    DesignBuilder &digitalClock(Frequency hz);

    // ----- algorithm -----

    /**
     * Add a stage; @p inputs name its producers in operand order.
     * Validates the stage parameters (by constructing a Stage), the
     * producer references, and the op arity immediately.
     */
    DesignBuilder &stage(StageParams params,
                         std::vector<std::string> inputs = {});

    /** Shorthand for a pixel-input stage. */
    DesignBuilder &inputStage(const std::string &name, Shape output,
                              int bit_depth = 8);

    // ----- analog hardware (insertion order = chain order) -----

    /** @throws ConfigError on duplicate hardware names or parameters
     *  the component factory rejects. */
    DesignBuilder &analogArray(AnalogArraySpec array);

    // ----- digital hardware -----

    DesignBuilder &memory(MemorySpec mem);

    /** SRAM-modelled memory at process node @p nm. */
    DesignBuilder &sram(const std::string &name, Layer layer,
                        MemoryKind kind, int64_t words, int word_bits,
                        int nm, double active_fraction = 1.0);

    /** STT-RAM-modelled memory at process node @p nm. */
    DesignBuilder &sttram(const std::string &name, Layer layer,
                          MemoryKind kind, int64_t words, int word_bits,
                          int nm, double active_fraction = 1.0);

    /** Pipelined accelerator wired to its buffers (port order =
     *  vector order). @throws ConfigError on unknown memories. */
    DesignBuilder &computeUnit(ComputeUnitParams params,
                               std::vector<std::string> input_mems = {},
                               std::vector<std::string> output_mems = {});

    /** Systolic array wired to its buffers. */
    DesignBuilder &systolicArray(SystolicArrayParams params,
                                 std::vector<std::string> input_mems = {},
                                 std::vector<std::string> output_mems = {});

    /** Route the ADC output into @p mem_name. */
    DesignBuilder &adcOutput(const std::string &mem_name);

    /** Append an input port of @p unit_name reading @p mem_name. */
    DesignBuilder &connectMemoryToUnit(const std::string &mem_name,
                                       const std::string &unit_name);

    /** Wire @p unit_name's output into @p mem_name. */
    DesignBuilder &connectUnitToMemory(const std::string &unit_name,
                                       const std::string &mem_name);

    // ----- communication -----

    /** MIPI CSI-2 link; 0 keeps the surveyed default energy. */
    DesignBuilder &mipi(Energy energy_per_byte = 0.0);

    /** uTSV link; 0 keeps the surveyed default energy. */
    DesignBuilder &tsv(Energy energy_per_byte = 0.0);

    /** Override the final-output data volume [B]. */
    DesignBuilder &pipelineOutputBytes(int64_t bytes);

    // ----- mapping -----

    /** Map @p stage_name onto @p hw_name. @throws ConfigError when
     *  either side is unknown or the stage is already mapped. */
    DesignBuilder &map(const std::string &stage_name,
                       const std::string &hw_name);

    // ----- products -----

    /** The assembled value-type spec (copy; the builder stays usable). */
    DesignSpec spec() const { return spec_; }

    /** Full validation + materialization. @throws ConfigError. */
    Design build() const;

  private:
    DesignSpec spec_;

    bool hasStage(const std::string &name) const;
    bool hasHardware(const std::string &name) const;
    bool hasMemory(const std::string &name) const;
    UnitSpec *findUnit(const std::string &name);
    void checkNewHardwareName(const std::string &name) const;
    void checkMemoryRefs(const std::vector<std::string> &mems,
                         const std::string &who) const;
    std::string knownUnitNames() const;
};

} // namespace camj::spec

#endif // CAMJ_SPEC_BUILDER_H
