/**
 * @file
 * SpecSource: a pull-based stream of DesignSpecs — the producer side
 * of the streaming sweep pipeline. Where a std::vector<DesignSpec>
 * forces every design point of a sweep to exist in memory up front, a
 * SpecSource yields points one at a time, so a 10k-point grid is
 * never materialized as a whole and a sweep can start evaluating
 * before the last point is even generated.
 *
 * Sources are single-consumer iterators: next() is not thread-safe
 * (the SweepEngine serializes its pulls), and a drained source stays
 * drained unless it documents a reset().
 */

#ifndef CAMJ_SPEC_SOURCE_H
#define CAMJ_SPEC_SOURCE_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "spec/spec.h"

namespace camj::spec
{

/** A pull-based stream of design points. */
class SpecSource
{
  public:
    virtual ~SpecSource() = default;

    /** The next design point, or nullopt when the stream is done. */
    virtual std::optional<DesignSpec> next() = 0;

    /**
     * Total points the source will yield (including already-yielded
     * ones), when known; nullopt for unbounded/unknown streams. Used
     * by the SweepEngine to clamp its worker count.
     */
    virtual std::optional<size_t> sizeHint() const
    {
        return std::nullopt;
    }

    /**
     * True when nextIndexed() may be called from several threads at
     * once. Sources backed by random access (a vector, a grid
     * expansion) claim this so sweep workers can produce points
     * concurrently off an atomic cursor instead of serializing under
     * the engine's source lock.
     */
    virtual bool concurrentPulls() const { return false; }

    /**
     * Pull one point together with its 0-based stream index (the
     * identity InOrderSink and shard mergers key on). Only called by
     * the engine when concurrentPulls() is true; such sources must
     * make it thread-safe. @throws InternalError by default.
     */
    virtual std::optional<DesignSpec> nextIndexed(size_t &index);

    /**
     * The spec field paths (grid-axis syntax) that differ between
     * point @p from and point @p to, when the source can answer
     * CHEAPLY — a grid knows its points differ only along the axes
     * whose coordinates differ, so the incremental evaluator's diff
     * is free for grid sweeps. nullopt when unknown (the evaluator
     * falls back to a JSON diff). The answer may over-approximate
     * (an extra path only costs a wasted stage re-run) but must
     * never omit a changed field. Must be thread-safe for sources
     * claiming concurrentPulls().
     */
    virtual std::optional<std::vector<std::string>> changedPaths(
        size_t from, size_t to) const
    {
        (void)from;
        (void)to;
        return std::nullopt;
    }
};

/**
 * A SpecSource with random access: every point can be produced by its
 * 0-based index without disturbing the stream cursor. This is the
 * contract sharding builds on — a ShardSpecSource re-enumerates an
 * arbitrary index subset of any indexable source, so the same grid
 * document can be split across processes and hosts while every point
 * keeps its global identity.
 */
class IndexableSpecSource : public SpecSource
{
  public:
    /** The spec of point @p index without advancing the stream.
     *  Thread-safe. @throws ConfigError when out of range. */
    virtual DesignSpec at(size_t index) const = 0;

    /** Total points the source covers (same value sizeHint()
     *  reports, but never unknown). */
    virtual size_t totalPoints() const = 0;
};

/** A source over an owned vector (the batch API's adapter).
 *  Supports concurrent pulls. */
class VectorSpecSource : public IndexableSpecSource
{
  public:
    explicit VectorSpecSource(std::vector<DesignSpec> specs)
        : specs_(std::move(specs))
    {
    }

    std::optional<DesignSpec> next() override;
    std::optional<size_t> sizeHint() const override
    {
        return specs_.size();
    }
    bool concurrentPulls() const override { return true; }
    std::optional<DesignSpec> nextIndexed(size_t &index) override;

    DesignSpec at(size_t index) const override;
    size_t totalPoints() const override { return specs_.size(); }

    /** Rewind to the first point (not thread-safe). */
    void reset() { cursor_.store(0, std::memory_order_relaxed); }

  private:
    std::vector<DesignSpec> specs_;
    std::atomic<size_t> cursor_{0};
};

/**
 * A source driven by a generator function: the callback receives the
 * running point index (0, 1, 2, ...) and returns the spec for that
 * index, or nullopt to end the stream. Lets procedural generators
 * (e.g. the paper-study registry) feed a sweep lazily.
 */
class GeneratorSpecSource : public SpecSource
{
  public:
    using Generator = std::function<std::optional<DesignSpec>(size_t)>;

    /** @param size_hint Total points when known (see sizeHint()). */
    explicit GeneratorSpecSource(
        Generator generate,
        std::optional<size_t> size_hint = std::nullopt);

    std::optional<DesignSpec> next() override;
    std::optional<size_t> sizeHint() const override { return hint_; }

  private:
    Generator generate_;
    std::optional<size_t> hint_;
    size_t cursor_ = 0;
    bool done_ = false;
};

} // namespace camj::spec

#endif // CAMJ_SPEC_SOURCE_H
