#include "spec/shard.h"

#include <fstream>

#include "common/logging.h"

namespace camj::spec
{

using json::Value;

// --------------------------------------------------------------- modes

std::string
shardModeName(ShardMode mode)
{
    switch (mode) {
      case ShardMode::Contiguous:
        return "contiguous";
      case ShardMode::Strided:
        return "strided";
      case ShardMode::Explicit:
        return "explicit";
    }
    panic("shardModeName: unknown mode %d", static_cast<int>(mode));
}

ShardMode
shardModeFromName(const std::string &name)
{
    if (name == "contiguous")
        return ShardMode::Contiguous;
    if (name == "strided")
        return ShardMode::Strided;
    if (name == "explicit")
        return ShardMode::Explicit;
    fatal("shard: unknown mode '%s' (known: contiguous, strided, "
          "explicit)", name.c_str());
}

// --------------------------------------------------------- assignments

size_t
ShardAssignment::count() const
{
    if (mode == ShardMode::Contiguous)
        return end - begin;
    if (mode == ShardMode::Explicit)
        return indices.size();
    // Strided: indices {k, k+N, ...} below total.
    if (shardIndex >= total)
        return 0;
    return (total - shardIndex + shardCount - 1) / shardCount;
}

size_t
ShardAssignment::globalIndex(size_t local) const
{
    if (local >= count())
        fatal("shard %zu/%zu: local index %zu out of range (shard "
              "has %zu points)", shardIndex, shardCount, local,
              count());
    if (mode == ShardMode::Contiguous)
        return begin + local;
    if (mode == ShardMode::Explicit)
        return indices[local];
    return shardIndex + local * shardCount;
}

void
ShardAssignment::validate() const
{
    if (shardCount == 0)
        fatal("shard: shardCount must be >= 1");
    if (shardIndex >= shardCount)
        fatal("shard: index %zu out of range (plan has %zu shards)",
              shardIndex, shardCount);
    if (begin > end || end > total)
        fatal("shard %zu/%zu: range [%zu, %zu) does not fit in "
              "[0, %zu)", shardIndex, shardCount, begin, end, total);
    if (mode == ShardMode::Strided && count() > 0 &&
        globalIndex(count() - 1) >= total)
        panic("shard %zu/%zu: strided range escapes [0, %zu)",
              shardIndex, shardCount, total);
    if (mode == ShardMode::Explicit) {
        for (size_t i = 0; i < indices.size(); ++i) {
            if (indices[i] >= total)
                fatal("shard: explicit index %zu out of range "
                      "[0, %zu)", indices[i], total);
            if (i > 0 && indices[i] <= indices[i - 1])
                fatal("shard: explicit index list must be strictly "
                      "ascending (%zu follows %zu)", indices[i],
                      indices[i - 1]);
        }
    } else if (!indices.empty()) {
        fatal("shard: %s mode does not take an index list",
              shardModeName(mode).c_str());
    }
}

ShardAssignment
explicitShard(size_t total, std::vector<size_t> indices)
{
    ShardAssignment a;
    a.mode = ShardMode::Explicit;
    a.shardIndex = 0;
    a.shardCount = 1;
    a.total = total;
    a.begin = indices.empty() ? 0 : indices.front();
    a.end = indices.empty() ? 0 : indices.back() + 1;
    a.indices = std::move(indices);
    a.validate();
    return a;
}

// ---------------------------------------------------------------- plans

ShardPlan
planShards(size_t total, size_t shard_count, ShardMode mode)
{
    if (shard_count == 0)
        fatal("planShards: shard count must be >= 1");
    if (mode == ShardMode::Explicit)
        fatal("planShards: explicit shards carry their own index "
              "list — build them with explicitShard()");
    ShardPlan plan;
    plan.mode = mode;
    plan.total = total;
    plan.shards.reserve(shard_count);
    const size_t base = total / shard_count;
    const size_t extra = total % shard_count;
    size_t cursor = 0;
    for (size_t k = 0; k < shard_count; ++k) {
        ShardAssignment a;
        a.mode = mode;
        a.shardIndex = k;
        a.shardCount = shard_count;
        a.total = total;
        if (mode == ShardMode::Contiguous) {
            a.begin = cursor;
            cursor += base + (k < extra ? 1 : 0);
            a.end = cursor;
        } else {
            a.begin = k < total ? k : total;
            a.end = total;
        }
        a.validate();
        plan.shards.push_back(a);
    }
    return plan;
}

// -------------------------------------------------------------- sources

ShardSpecSource::ShardSpecSource(const IndexableSpecSource &parent,
                                 ShardAssignment assignment)
    : parent_(parent), assignment_(assignment)
{
    assignment_.validate();
    if (assignment_.total != parent.totalPoints())
        fatal("shard %zu/%zu: assignment covers %zu points but the "
              "source has %zu", assignment_.shardIndex,
              assignment_.shardCount, assignment_.total,
              parent.totalPoints());
}

std::optional<DesignSpec>
ShardSpecSource::next()
{
    size_t index = 0;
    return nextIndexed(index);
}

std::optional<DesignSpec>
ShardSpecSource::nextIndexed(size_t &index)
{
    const size_t local = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (local >= assignment_.count())
        return std::nullopt;
    index = local;
    return parent_.at(assignment_.globalIndex(local));
}

std::optional<std::vector<std::string>>
ShardSpecSource::changedPaths(size_t from, size_t to) const
{
    if (from >= assignment_.count() || to >= assignment_.count())
        return std::nullopt;
    return parent_.changedPaths(assignment_.globalIndex(from),
                                assignment_.globalIndex(to));
}

// ---------------------------------------------------------- descriptors

namespace
{

Value
shardToJson(const ShardAssignment &a)
{
    Value block = Value::makeObject();
    block.set("mode", Value(shardModeName(a.mode)));
    block.set("index", Value(static_cast<int64_t>(a.shardIndex)));
    block.set("count", Value(static_cast<int64_t>(a.shardCount)));
    block.set("total", Value(static_cast<int64_t>(a.total)));
    block.set("begin", Value(static_cast<int64_t>(a.begin)));
    block.set("end", Value(static_cast<int64_t>(a.end)));
    if (a.mode == ShardMode::Explicit) {
        Value indices = Value::makeArray();
        for (size_t i : a.indices)
            indices.push(Value(static_cast<int64_t>(i)));
        block.set("indices", std::move(indices));
    }
    return block;
}

ShardAssignment
shardFromJson(const Value &block)
{
    ShardAssignment a;
    a.mode = shardModeFromName(block.at("mode").asString());
    auto member = [&](const char *key) {
        const int64_t v = block.at(key).asInt();
        if (v < 0)
            fatal("shard: member '%s' is negative (%lld)", key,
                  static_cast<long long>(v));
        return static_cast<size_t>(v);
    };
    a.shardIndex = member("index");
    a.shardCount = member("count");
    a.total = member("total");
    a.begin = member("begin");
    a.end = member("end");
    if (a.mode == ShardMode::Explicit) {
        for (const Value &v : block.at("indices").asArray()) {
            const int64_t i = v.asInt();
            if (i < 0)
                fatal("shard: negative explicit index %lld",
                      static_cast<long long>(i));
            a.indices.push_back(static_cast<size_t>(i));
        }
    }
    a.validate();
    return a;
}

} // namespace

std::string
shardDescriptorToJson(const ShardDescriptor &descriptor)
{
    Value doc = toJsonValue(descriptor.doc.base);
    if (!descriptor.doc.grid.axes.empty())
        doc.set("sweepGrid", gridToJson(descriptor.doc.grid));
    doc.set("shard", shardToJson(descriptor.shard));
    return doc.dump(2) + "\n";
}

ShardDescriptor
shardDescriptorFromJson(const std::string &text)
{
    Value doc = Value::parse(text);
    ShardDescriptor out;
    if (const Value *block = doc.find("sweepGrid"))
        out.doc.grid = gridFromJson(*block);
    out.doc.base = fromJsonValue(doc);
    const size_t points = out.doc.grid.points();
    if (const Value *block = doc.find("shard")) {
        out.shard = shardFromJson(*block);
    } else {
        // A plain sweep document is the whole sweep: shard 0 of 1.
        out.shard = planShards(points, 1).shards.front();
    }
    if (out.shard.total != points)
        fatal("shard: descriptor says %zu total points but its own "
              "sweepGrid expands to %zu — the plan and the document "
              "disagree", out.shard.total, points);
    return out;
}

ShardDescriptor
loadShardFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("shard: cannot open '%s' for reading", path.c_str());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
        return shardDescriptorFromJson(text);
    } catch (const ConfigError &e) {
        fatal("shard: %s: %s", path.c_str(), e.what());
    }
}

std::vector<std::string>
writeShardPlan(const SweepDocument &doc, const ShardPlan &plan,
               const std::string &out_dir, const std::string &prefix)
{
    std::vector<std::string> paths;
    paths.reserve(plan.shards.size());
    for (const ShardAssignment &a : plan.shards) {
        ShardDescriptor d{doc, a};
        std::string path = strprintf(
            "%s/%s-shard-%zu-of-%zu.json",
            out_dir.empty() ? "." : out_dir.c_str(), prefix.c_str(),
            a.shardIndex, a.shardCount);
        std::ofstream out(path, std::ios::binary);
        out << shardDescriptorToJson(d);
        out.flush();
        if (!out)
            fatal("shard: cannot write '%s'", path.c_str());
        paths.push_back(std::move(path));
    }
    return paths;
}

std::vector<std::string>
writeShardPlan(const SweepDocument &doc, size_t shard_count,
               ShardMode mode, const std::string &out_dir,
               const std::string &prefix)
{
    return writeShardPlan(
        doc, planShards(doc.grid.points(), shard_count, mode),
        out_dir, prefix);
}

} // namespace camj::spec
