#include "spec/source.h"

#include "common/logging.h"

namespace camj::spec
{

std::optional<DesignSpec>
SpecSource::nextIndexed(size_t &)
{
    panic("SpecSource: nextIndexed() called on a source that does "
          "not support concurrent pulls");
}

std::optional<DesignSpec>
VectorSpecSource::next()
{
    size_t index = 0;
    return nextIndexed(index);
}

std::optional<DesignSpec>
VectorSpecSource::nextIndexed(size_t &index)
{
    const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= specs_.size())
        return std::nullopt;
    index = i;
    return specs_[i];
}

DesignSpec
VectorSpecSource::at(size_t index) const
{
    if (index >= specs_.size())
        fatal("VectorSpecSource: point %zu out of range (%zu points)",
              index, specs_.size());
    return specs_[index];
}

GeneratorSpecSource::GeneratorSpecSource(Generator generate,
                                         std::optional<size_t> size_hint)
    : generate_(std::move(generate)), hint_(size_hint)
{
    if (!generate_)
        fatal("GeneratorSpecSource: null generator function");
}

std::optional<DesignSpec>
GeneratorSpecSource::next()
{
    if (done_)
        return std::nullopt;
    if (hint_ && cursor_ >= *hint_) {
        done_ = true;
        return std::nullopt;
    }
    std::optional<DesignSpec> spec = generate_(cursor_);
    if (!spec) {
        done_ = true;
        return std::nullopt;
    }
    ++cursor_;
    return spec;
}

} // namespace camj::spec
