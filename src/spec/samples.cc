#include "spec/samples.h"

#include <string>

#include "common/units.h"
#include "spec/builder.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj::spec
{

DesignSpec
sampleDetectorSpec(double fps, int node_nm)
{
    const NodeParams node = nodeParams(node_nm);
    ComponentSpec pixel;
    pixel.kind = ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.pixelsPerComponent = 16;
    ComponentSpec adc;
    adc.kind = ComponentKind::ColumnAdc;
    adc.adc = {.bits = 8};

    return DesignBuilder("detector-" + std::to_string(node_nm) +
                         "nm-" +
                         std::to_string(static_cast<int>(fps)) + "fps")
        .fps(fps)
        .digitalClock(20e6)
        .inputStage("Input", {320, 240, 1})
        .stage({.name = "Bin",
                .op = StageOp::Binning,
                .inputSize = {320, 240, 1},
                .outputSize = {80, 60, 1},
                .kernel = {4, 4, 1},
                .stride = {4, 4, 1}},
               {"Input"})
        .stage({.name = "Conv",
                .op = StageOp::Conv2d,
                .inputSize = {80, 60, 1},
                .outputSize = {78, 58, 8},
                .kernel = {3, 3, 1},
                .stride = {1, 1, 1}},
               {"Bin"})
        .stage({.name = "Classify",
                .op = StageOp::FullyConnected,
                .inputSize = {78, 58, 8},
                .outputSize = {4, 1, 1}},
               {"Conv"})
        .analogArray({.name = "PixelArray",
                      .role = AnalogRole::Sensing,
                      .numComponents = {80, 60, 1},
                      .inputShape = {1, 80, 1},
                      .outputShape = {1, 80, 1},
                      .componentArea = 16.0 * 9.0 * units::um2,
                      .component = pixel})
        .analogArray({.name = "Adc",
                      .role = AnalogRole::Adc,
                      .numComponents = {80, 1, 1},
                      .inputShape = {1, 80, 1},
                      .outputShape = {1, 80, 1},
                      .componentArea = 1e-9,
                      .component = adc})
        .sram("ActBuf", Layer::Sensor, MemoryKind::DoubleBuffer, 16384,
              64, node_nm, 0.5)
        .systolicArray({.name = "Classifier",
                        .layer = Layer::Sensor,
                        .rows = 8,
                        .cols = 8,
                        .energyPerMac = macEnergy8bit(node_nm),
                        .peArea = macArea8bit(node_nm)},
                       {"ActBuf"})
        .adcOutput("ActBuf")
        .mipi()
        .pipelineOutputBytes(4) // class label only
        .map("Input", "PixelArray")
        .map("Bin", "PixelArray")
        .map("Conv", "Classifier")
        .map("Classify", "Classifier")
        .spec();
}

std::vector<DesignSpec>
sampleDetectorGrid(const std::vector<int> &nodes,
                   const std::vector<double> &rates)
{
    std::vector<DesignSpec> grid;
    grid.reserve(nodes.size() * rates.size());
    for (int node : nodes) {
        for (double fps : rates)
            grid.push_back(sampleDetectorSpec(fps, node));
    }
    return grid;
}

SweepDocument
sampleDetectorStudy()
{
    SweepDocument doc;
    doc.base = sampleDetectorSpec(30.0, 65);
    doc.grid.axes = {
        {"rate", "fps",
         {json::Value(1.0), json::Value(5.0), json::Value(15.0),
          json::Value(30.0), json::Value(60.0), json::Value(120.0),
          json::Value(240.0), json::Value(480.0), json::Value(960.0)}},
        {"bufnode", "memories[ActBuf].nodeNm",
         {json::Value(180), json::Value(110), json::Value(65),
          json::Value(45)}},
        {"duty", "memories[ActBuf].activeFraction",
         {json::Value(0.25), json::Value(0.5), json::Value(1.0)}},
    };
    return doc;
}

} // namespace camj::spec
