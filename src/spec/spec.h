/**
 * @file
 * DesignSpec: a fully serializable, value-type description of one
 * computational-CIS design point — the three decoupled descriptions
 * of Sec. 3.3 (algorithm DAG, hardware, mapping) as plain data.
 *
 * Where the Design class is an imperative object assembled through
 * mutating setters, a DesignSpec is a document: it can be loaded from
 * and saved to JSON (camj::spec::fromJson / toJson), diffed, swept,
 * and shipped between processes. materialize() lowers a spec onto the
 * existing Design engine, which becomes a thin internal layer under
 * this front-end.
 *
 * Analog components are described by *kind* plus the corresponding
 * factory parameter struct (the Table 1 component library), so a spec
 * stays declarative without serializing cell-level netlists. Designs
 * outside the library (the paper's chip reconstructions use
 * current-domain MACs, winner-take-all pools, in-pixel multipliers)
 * use ComponentKind::Custom, which serializes the Sec. 4.2 cell chain
 * itself: an ordered list of dynamic / static-biased / non-linear
 * cells with their electrical parameters.
 */

#ifndef CAMJ_SPEC_SPEC_H
#define CAMJ_SPEC_SPEC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/design.h"
#include "spec/json.h"

namespace camj::spec
{

// ------------------------------------------------------------ algorithm

/** One algorithm stage plus its producer edges (operand order). */
struct StageSpec
{
    StageParams params;
    /** Names of producer stages, in operand order. */
    std::vector<std::string> inputs;
};

// ----------------------------------------------------- analog hardware

/** Component kinds of the Table 1 analog library. */
enum class ComponentKind
{
    Aps4T,
    Aps3T,
    Dps,
    PwmPixel,
    DvsPixel,
    ColumnAdc,
    SwitchedCapMac,
    ChargeAdder,
    Scaler,
    AbsUnit,
    MaxUnit,
    Comparator,
    LogUnit,
    PassiveAnalogMemory,
    ActiveAnalogMemory,
    ChargeToVoltage,
    CurrentToVoltage,
    TimeToVoltage,
    SampleHold,
    /** An explicit Sec. 4.2 cell chain (see CustomComponentSpec). */
    Custom,
};

/** Kind <-> stable JSON token ("aps4t", "column-adc", ...). */
const char *componentKindName(ComponentKind kind);
ComponentKind componentKindFromName(const std::string &name);

// ---------------------------------------------- custom cell chains

/** The three A-Cell energy classes of Sec. 4.2. */
enum class CellClass
{
    /** Eq. 5 charge/discharge energy (DynamicCell). */
    Dynamic,
    /** Eq. 7-10 bias-current energy (StaticBiasedCell). */
    StaticBias,
    /** Eq. 12 Walden-FoM energy (NonLinearCell). */
    NonLinear,
};

const char *cellClassName(CellClass cls);
CellClass cellClassFromName(const std::string &name);

const char *timingScopeName(TimingScope scope);
TimingScope timingScopeFromName(const std::string &name);

const char *biasModeName(BiasMode mode);
BiasMode biasModeFromName(const std::string &name);

SignalDomain signalDomainFromName(const std::string &name);

/** One cell on a custom component's critical path. */
struct CellSpec
{
    CellClass cls = CellClass::Dynamic;
    std::string name;
    /** Capacitance nodes (Dynamic). */
    std::vector<CapNode> caps;
    /** Bias parameters (StaticBias). */
    StaticBiasParams bias;
    /** Resolution (NonLinear); a comparator is 1 bit. */
    int bits = 1;
    /** Per-conversion energy override (NonLinear); 0 = FoM survey. */
    Energy energyOverride = 0.0;
    /** Spatial replication inside the component. */
    int spatial = 1;
    /** Temporal uses per component operation. */
    int temporal = 1;
    TimingScope scope = TimingScope::SelfSlot;

    /** Build the A-Cell. @throws ConfigError. */
    std::shared_ptr<const ACell> instantiate() const;
};

/**
 * A component outside the Table 1 library, declared as the ordered
 * cell chain the signal flows through — the serializable equivalent
 * of assembling an AComponent by hand.
 */
struct CustomComponentSpec
{
    std::string name;
    SignalDomain input = SignalDomain::Voltage;
    SignalDomain output = SignalDomain::Voltage;
    std::vector<CellSpec> cells;
};

/**
 * A declarative analog component: a library kind plus the parameter
 * struct that kind's factory consumes. Only the parameters relevant
 * to the kind are serialized.
 */
struct ComponentSpec
{
    ComponentKind kind = ComponentKind::Aps4T;
    /** Pixel kinds (Aps4T/Aps3T/Dps/PwmPixel/DvsPixel). */
    ApsParams aps;
    /** ColumnAdc and the Dps in-pixel converter. */
    AdcParams adc;
    /** Switched-capacitor compute kinds. */
    SwitchedCapParams sc;
    /** Analog memory kinds. */
    AnalogMemoryParams analogMem;
    /** Domain converters and sample-hold. */
    ConverterParams conv;
    /** MaxUnit fan-in. */
    int maxInputs = 2;
    /** Comparator per-decision energy override (0 = FoM survey). */
    Energy comparatorEnergyOverride = 0.0;
    /** LogUnit load capacitance [F]. */
    Capacitance logLoadCap = 50e-15;
    /** LogUnit analog supply [V]. */
    Voltage logVdda = 2.5;
    /** Explicit cell chain (kind == Custom). */
    CustomComponentSpec custom;

    /** Instantiate the library component. @throws ConfigError. */
    AComponent instantiate() const;
};

/** One analog array of the chain (insertion order = pipeline order). */
struct AnalogArraySpec
{
    std::string name;
    Layer layer = Layer::Sensor;
    AnalogRole role = AnalogRole::Sensing;
    Shape numComponents = {1, 1, 1};
    Shape inputShape = {1, 1, 1};
    Shape outputShape = {1, 1, 1};
    Area componentArea = 0.0;
    ComponentSpec component;
};

// ---------------------------------------------------- digital hardware

/** Where a digital memory's electrical numbers come from. */
enum class MemoryModel
{
    /** All electrical parameters spelled out in the spec. */
    Explicit,
    /** Derived from the analytical SRAM model at `node_nm`. */
    Sram,
    /** Derived from the analytical STT-RAM model at `node_nm`. */
    Sttram,
    /** Derived from the flip-flop register-file model at `node_nm`
     *  (PE-local scratch storage; capacity limited to 4 KB). */
    Regfile,
};

const char *memoryModelName(MemoryModel model);
MemoryModel memoryModelFromName(const std::string &name);

/** One digital memory. */
struct MemorySpec
{
    std::string name;
    Layer layer = Layer::Sensor;
    MemoryKind kind = MemoryKind::Fifo;
    MemoryModel model = MemoryModel::Sram;
    int64_t capacityWords = 0;
    int wordBits = 8;
    /** Process node for the Sram/Sttram models [nm]. */
    int nodeNm = 65;
    double activeFraction = 1.0;
    // Explicit-model electricals (ignored by Sram/Sttram).
    Energy readEnergyPerWord = 0.0;
    Energy writeEnergyPerWord = 0.0;
    Power leakagePower = 0.0;
    int readPorts = 1;
    int writePorts = 1;
    Area area = 0.0;

    /** Build the DigitalMemory. @throws ConfigError. */
    DigitalMemory instantiate() const;
};

/** Digital execution-unit kinds. */
enum class UnitKind
{
    Pipeline,
    Systolic,
};

/**
 * One digital execution unit plus its buffer wiring. A single vector
 * of these preserves the registration order of mixed pipeline/systolic
 * designs (the engine's unit order is observable in reports).
 */
struct UnitSpec
{
    UnitKind kind = UnitKind::Pipeline;
    /** Pipeline parameters (kind == Pipeline). */
    ComputeUnitParams pipeline;
    /** Systolic parameters (kind == Systolic). */
    SystolicArrayParams systolic;
    /** Input memories in port order. */
    std::vector<std::string> inputMemories;
    /** Output memories. */
    std::vector<std::string> outputMemories;

    const std::string &name() const;
};

// --------------------------------------------------------- design spec

/** Optional point-to-point link config. */
struct CommSpec
{
    bool present = false;
    /** Energy per byte [J/B]; 0 = the surveyed default. */
    Energy energyPerByte = 0.0;
};

class MaterializeCache;

/** A complete, serializable design point. */
struct DesignSpec
{
    std::string name;
    double fps = 30.0;
    Frequency digitalClock = 50e6;

    std::vector<StageSpec> stages;
    std::vector<AnalogArraySpec> analogArrays;
    std::vector<MemorySpec> memories;
    std::vector<UnitSpec> units;

    /** Memory receiving the ADC output ("" = none). */
    std::string adcOutputMemory;
    CommSpec mipi;
    CommSpec tsv;
    /** Final-output data-volume override [B]; -1 = derived. */
    int64_t pipelineOutputBytes = -1;

    /** Stage-name -> hardware-name pairs. */
    std::vector<std::pair<std::string, std::string>> mapping;

    /**
     * Structural validation without building anything: unique names,
     * edge/wiring references resolve, mapping targets exist. The
     * deeper physics checks still run inside simulate().
     *
     * @throws ConfigError describing the first violation.
     */
    void validate() const;

    /**
     * Lower onto the imperative Design engine.
     *
     * @param cache Optional materialization cache: analog components
     *        whose serialized parameters match a previously built one
     *        are reused instead of re-instantiated. Results are
     *        bit-identical either way (instantiation is a pure
     *        function of the parameters); the cache only saves the
     *        rebuild cost across spec deltas, e.g. along one grid
     *        axis of a sweep.
     *
     * @throws ConfigError on any invalid parameter or reference.
     */
    Design materialize(MaterializeCache *cache = nullptr) const;
};

// ------------------------------------------------------ delta caching

/**
 * Reusable store of instantiated analog components, keyed by the
 * component's serialized parameter TREE — a structural hash buckets
 * the lookup, and a full tree equality verifies every candidate, so
 * a hash collision can never hand back the wrong component. Sweeps
 * over spec deltas (one grid axis changing at a time) rebuild only
 * the sub-structures the delta touches; unchanged components are
 * shared (AComponents are cheap to copy and their cells are
 * immutable).
 *
 * NOT thread-safe: give each sweep worker its own cache.
 */
class MaterializeCache
{
  public:
    /** Instantiate @p component, or reuse an identical earlier one.
     *  @throws ConfigError on invalid parameters (never cached). */
    const AComponent &component(const ComponentSpec &component);

    size_t hits() const { return hits_; }
    size_t misses() const { return misses_; }
    size_t size() const { return count_; }
    void clear();

  private:
    struct CachedComponent
    {
        /** The serialized parameter tree (the verified key). */
        json::Value params;
        AComponent component;
    };
    std::unordered_map<uint64_t, std::vector<CachedComponent>>
        components_;
    size_t count_ = 0;
    size_t hits_ = 0;
    size_t misses_ = 0;
};

// ---------------------------------------------------------- diagnostics

/** Comma-join names for error messages; "<none>" when empty. Shared
 *  by every "references unknown X (registered: ...)" diagnostic. */
std::string joinNames(const std::vector<std::string> &names);

// -------------------------------------------------------- serialization

/** Spec -> JSON value tree (the document toJson() renders). */
json::Value toJsonValue(const DesignSpec &spec);

/** Spec -> pretty-printed JSON document. */
std::string toJson(const DesignSpec &spec);

/**
 * Parsed JSON document -> spec. The tree-level twin of fromJson();
 * grid expansion uses it to avoid re-parsing text per design point.
 *
 * @throws ConfigError on unknown enum tokens or missing members.
 */
DesignSpec fromJsonValue(const json::Value &doc);

/**
 * JSON document -> spec.
 *
 * @throws ConfigError on syntax errors, unknown enum tokens, or
 *         missing required members.
 */
DesignSpec fromJson(const std::string &text);

/** Load a spec from a JSON file. @throws ConfigError on I/O errors. */
DesignSpec loadSpecFile(const std::string &path);

/** Save a spec as JSON. @throws ConfigError on I/O errors. */
void saveSpecFile(const DesignSpec &spec, const std::string &path);

} // namespace camj::spec

#endif // CAMJ_SPEC_SPEC_H
