/**
 * @file
 * ShardPlan: splitting one sweep across processes and hosts. A
 * SweepGrid (or any IndexableSpecSource) enumerates its design points
 * by a global 0-based index; a shard plan partitions [0, total) into
 * N disjoint index sets, one per worker process, in one of two modes:
 *
 *   - Contiguous: shard k owns one [begin, end) range, balanced to
 *     within one point. Ranges follow the grid's row-major order, so
 *     a shard covers a contiguous run along the outermost axis —
 *     cache-friendly for delta materialization.
 *   - Strided: shard k owns indices {k, k+N, k+2N, ...} — round-robin
 *     striping, which balances heterogeneous point costs (e.g. an fps
 *     axis where high rates simulate slower) across shards.
 *
 * Each shard serializes as a SELF-CONTAINED JSON descriptor — the
 * full sweep document (base spec + sweepGrid block) plus a "shard"
 * block naming the mode, k/N, the grid total, and the index range —
 * so a worker host needs exactly one file and no shared state:
 *
 *   camj_sweep plan study.json --shards 4        # 4 descriptors
 *   camj_sweep run study-shard-2-of-4.json ...   # on any host
 *   camj_sweep merge study-shard-*.jsonl ...     # back to one file
 *
 * ShardSpecSource re-enumerates a shard's subset of the global index
 * space: it yields LOCAL indices (0, 1, ..., count) so the engine's
 * InOrderSink works unchanged, and globalIndex() maps a local index
 * back to the grid point it names — the identity shard JSONL lines
 * carry and the merge reducer keys on.
 */

#ifndef CAMJ_SPEC_SHARD_H
#define CAMJ_SPEC_SHARD_H

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "spec/grid.h"
#include "spec/json.h"
#include "spec/source.h"

namespace camj::spec
{

/** How a plan partitions the global index space. */
enum class ShardMode
{
    /** Shard k owns one contiguous [begin, end) range. */
    Contiguous,
    /** Shard k owns {k, k+N, k+2N, ...}. */
    Strided,
    /** The shard owns an explicit ascending index list — the
     *  retry/resume shape: `camj_sweep merge --resume-plan` emits a
     *  descriptor covering exactly the indices a crashed or lost
     *  shard run left missing. */
    Explicit,
};

/** ShardMode <-> its JSON token ("contiguous"/"strided"/"explicit"). */
std::string shardModeName(ShardMode mode);
ShardMode shardModeFromName(const std::string &name);

/** One shard's slice of a sweep: which global indices it owns. */
struct ShardAssignment
{
    ShardMode mode = ShardMode::Contiguous;
    /** This shard's number k, 0-based. */
    size_t shardIndex = 0;
    /** Total shards N in the plan. */
    size_t shardCount = 1;
    /** Global design points in the sweep (grid.points()). */
    size_t total = 0;
    /** Contiguous mode: the owned [begin, end) range. Strided mode:
     *  begin == shardIndex and end == total (informational).
     *  Explicit mode: the hull [first, last+1) of the index list
     *  (informational). */
    size_t begin = 0;
    size_t end = 0;
    /** Explicit mode: the owned global indices, strictly ascending. */
    std::vector<size_t> indices;

    /** Design points this shard owns. */
    size_t count() const;

    /** The global grid index of this shard's @p local-th point
     *  (local in [0, count())). @throws ConfigError out of range. */
    size_t globalIndex(size_t local) const;

    /** Internal consistency (k < N, begin <= end <= total, mode/range
     *  agreement, explicit index lists strictly ascending and in
     *  range). @throws ConfigError naming the bad field. */
    void validate() const;
};

/** The explicit-index assignment over @p indices (strictly ascending,
 *  all < @p total): shard 0 of 1 covering exactly those points.
 *  @throws ConfigError on unordered/duplicate/out-of-range indices. */
ShardAssignment explicitShard(size_t total,
                              std::vector<size_t> indices);

/** A full partition of [0, total) into shardCount assignments. */
struct ShardPlan
{
    ShardMode mode = ShardMode::Contiguous;
    size_t total = 0;
    std::vector<ShardAssignment> shards;
};

/**
 * Partition @p total points into @p shard_count shards. Contiguous
 * ranges are balanced to within one point (the first total %% N
 * shards take the extra one); strided shards interleave. Shards may
 * be empty when shard_count > total — plans stay valid, the empty
 * shard just produces an empty JSONL file.
 *
 * @throws ConfigError when shard_count is zero.
 */
ShardPlan planShards(size_t total, size_t shard_count,
                     ShardMode mode = ShardMode::Contiguous);

/**
 * The per-process view of a sweep: yields exactly the points of
 * @p assignment out of @p parent, in ascending GLOBAL order, but
 * numbered by LOCAL stream index (0-based, dense) so InOrderSink and
 * StreamStats behave as for any other source. Map results back to
 * grid identity with assignment().globalIndex(result.index) — or let
 * ReindexSink do it (see explore/sink.h).
 *
 * Supports concurrent pulls; @p parent must outlive the source and
 * its at() must be thread-safe (GridSpecSource and VectorSpecSource
 * both are).
 */
class ShardSpecSource : public SpecSource
{
  public:
    /** @throws ConfigError when the assignment does not fit the
     *  parent (totals disagree) or is internally inconsistent. */
    ShardSpecSource(const IndexableSpecSource &parent,
                    ShardAssignment assignment);

    std::optional<DesignSpec> next() override;
    std::optional<size_t> sizeHint() const override
    {
        return assignment_.count();
    }
    bool concurrentPulls() const override { return true; }
    std::optional<DesignSpec> nextIndexed(size_t &index) override;

    /** Delegates to the parent over the global indices, so shard
     *  workers get the same free diffs a whole-grid sweep gets. */
    std::optional<std::vector<std::string>> changedPaths(
        size_t from, size_t to) const override;

    const ShardAssignment &assignment() const { return assignment_; }

    /** Rewind to the first point (not thread-safe). */
    void reset() { cursor_.store(0, std::memory_order_relaxed); }

  private:
    const IndexableSpecSource &parent_;
    ShardAssignment assignment_;
    std::atomic<size_t> cursor_{0};
};

// --------------------------------------------------- shard descriptors

/**
 * A self-contained shard work order: the sweep document a worker
 * expands plus the slice of it this worker owns.
 */
struct ShardDescriptor
{
    SweepDocument doc;
    ShardAssignment shard;

    /** The lazy source over exactly this shard's points. The returned
     *  GridSpecSource (first) must outlive the ShardSpecSource. */
    GridSpecSource gridSource() const { return doc.source(); }
};

/** Descriptor -> one JSON document (spec + sweepGrid + shard). */
std::string shardDescriptorToJson(const ShardDescriptor &descriptor);

/**
 * Parse a shard descriptor document. The shard block is validated
 * against the document's own grid (shard.total must equal
 * grid.points()). @throws ConfigError.
 */
ShardDescriptor shardDescriptorFromJson(const std::string &text);

/** Load a descriptor file. A plain sweep document (no "shard" block)
 *  loads as the whole sweep: shard 0 of 1. @throws ConfigError. */
ShardDescriptor loadShardFile(const std::string &path);

/**
 * Write one descriptor file per shard of @p plan into @p out_dir,
 * named "<prefix>-shard-<k>-of-<N>.json". The plan must cover @p
 * doc's own grid (shard totals are validated at load time).
 *
 * @return the paths written, in shard order. @throws ConfigError on
 *         I/O failure.
 */
std::vector<std::string> writeShardPlan(const SweepDocument &doc,
                                        const ShardPlan &plan,
                                        const std::string &out_dir,
                                        const std::string &prefix);

/** Convenience overload: plan @p shard_count shards over @p doc's
 *  grid, then write the descriptor files. @throws ConfigError. */
std::vector<std::string> writeShardPlan(const SweepDocument &doc,
                                        size_t shard_count,
                                        ShardMode mode,
                                        const std::string &out_dir,
                                        const std::string &prefix);

} // namespace camj::spec

#endif // CAMJ_SPEC_SHARD_H
