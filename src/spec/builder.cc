#include "spec/builder.h"

#include "common/logging.h"

namespace camj::spec
{

DesignBuilder::DesignBuilder(std::string design_name)
{
    if (design_name.empty())
        fatal("DesignBuilder: empty design name");
    spec_.name = std::move(design_name);
}

DesignBuilder::DesignBuilder(DesignSpec spec)
    : spec_(std::move(spec))
{
    spec_.validate();
}

DesignBuilder &
DesignBuilder::fps(double value)
{
    if (value <= 0.0)
        fatal("DesignBuilder %s: fps must be positive",
              spec_.name.c_str());
    spec_.fps = value;
    return *this;
}

DesignBuilder &
DesignBuilder::digitalClock(Frequency hz)
{
    if (hz <= 0.0)
        fatal("DesignBuilder %s: digital clock must be positive",
              spec_.name.c_str());
    spec_.digitalClock = hz;
    return *this;
}

bool
DesignBuilder::hasStage(const std::string &name) const
{
    for (const StageSpec &s : spec_.stages) {
        if (s.params.name == name)
            return true;
    }
    return false;
}

bool
DesignBuilder::hasMemory(const std::string &name) const
{
    for (const MemorySpec &m : spec_.memories) {
        if (m.name == name)
            return true;
    }
    return false;
}

bool
DesignBuilder::hasHardware(const std::string &name) const
{
    for (const AnalogArraySpec &a : spec_.analogArrays) {
        if (a.name == name)
            return true;
    }
    if (hasMemory(name))
        return true;
    for (const UnitSpec &u : spec_.units) {
        if (u.name() == name)
            return true;
    }
    return false;
}

UnitSpec *
DesignBuilder::findUnit(const std::string &name)
{
    for (UnitSpec &u : spec_.units) {
        if (u.name() == name)
            return &u;
    }
    return nullptr;
}

void
DesignBuilder::checkNewHardwareName(const std::string &name) const
{
    if (name.empty())
        fatal("DesignBuilder %s: empty hardware name",
              spec_.name.c_str());
    if (hasHardware(name))
        fatal("DesignBuilder %s: duplicate hardware name '%s'",
              spec_.name.c_str(), name.c_str());
}

void
DesignBuilder::checkMemoryRefs(const std::vector<std::string> &mems,
                               const std::string &who) const
{
    for (const std::string &m : mems) {
        if (!hasMemory(m)) {
            std::vector<std::string> known;
            for (const MemorySpec &mem : spec_.memories)
                known.push_back(mem.name);
            fatal("DesignBuilder %s: %s references unknown memory "
                  "'%s' (registered memories: %s)", spec_.name.c_str(),
                  who.c_str(), m.c_str(), joinNames(known).c_str());
        }
    }
}

std::string
DesignBuilder::knownUnitNames() const
{
    std::vector<std::string> known;
    for (const UnitSpec &u : spec_.units)
        known.push_back(u.name());
    return joinNames(known);
}

DesignBuilder &
DesignBuilder::stage(StageParams params, std::vector<std::string> inputs)
{
    // Constructing a Stage runs the full shape/stencil validation now.
    Stage probe(params);
    if (hasStage(params.name))
        fatal("DesignBuilder %s: duplicate stage '%s'",
              spec_.name.c_str(), params.name.c_str());
    const int arity = stageOpArity(params.op);
    if (static_cast<int>(inputs.size()) != arity)
        fatal("DesignBuilder %s: stage '%s' (%s) needs %d input(s), "
              "got %zu", spec_.name.c_str(), params.name.c_str(),
              stageOpName(params.op), arity, inputs.size());
    for (const std::string &in : inputs) {
        if (!hasStage(in))
            fatal("DesignBuilder %s: stage '%s' reads unknown stage "
                  "'%s' (stages are declared producer-first)",
                  spec_.name.c_str(), params.name.c_str(), in.c_str());
    }
    spec_.stages.push_back({std::move(params), std::move(inputs)});
    return *this;
}

DesignBuilder &
DesignBuilder::inputStage(const std::string &name, Shape output,
                          int bit_depth)
{
    return stage({.name = name,
                  .op = StageOp::Input,
                  .outputSize = output,
                  .bitDepth = bit_depth});
}

DesignBuilder &
DesignBuilder::analogArray(AnalogArraySpec array)
{
    checkNewHardwareName(array.name);
    // Instantiating validates the component parameters eagerly.
    AComponent probe = array.component.instantiate();
    (void)probe;
    spec_.analogArrays.push_back(std::move(array));
    return *this;
}

DesignBuilder &
DesignBuilder::memory(MemorySpec mem)
{
    checkNewHardwareName(mem.name);
    DigitalMemory probe = mem.instantiate();
    (void)probe;
    spec_.memories.push_back(std::move(mem));
    return *this;
}

DesignBuilder &
DesignBuilder::sram(const std::string &name, Layer layer,
                    MemoryKind kind, int64_t words, int word_bits,
                    int nm, double active_fraction)
{
    MemorySpec m;
    m.name = name;
    m.layer = layer;
    m.kind = kind;
    m.model = MemoryModel::Sram;
    m.capacityWords = words;
    m.wordBits = word_bits;
    m.nodeNm = nm;
    m.activeFraction = active_fraction;
    return memory(std::move(m));
}

DesignBuilder &
DesignBuilder::sttram(const std::string &name, Layer layer,
                      MemoryKind kind, int64_t words, int word_bits,
                      int nm, double active_fraction)
{
    MemorySpec m;
    m.name = name;
    m.layer = layer;
    m.kind = kind;
    m.model = MemoryModel::Sttram;
    m.capacityWords = words;
    m.wordBits = word_bits;
    m.nodeNm = nm;
    m.activeFraction = active_fraction;
    return memory(std::move(m));
}

DesignBuilder &
DesignBuilder::computeUnit(ComputeUnitParams params,
                           std::vector<std::string> input_mems,
                           std::vector<std::string> output_mems)
{
    checkNewHardwareName(params.name);
    ComputeUnit probe(params);
    (void)probe;
    checkMemoryRefs(input_mems,
                    "computeUnit('" + params.name + "').inputMemories");
    checkMemoryRefs(output_mems,
                    "computeUnit('" + params.name +
                        "').outputMemories");
    UnitSpec u;
    u.kind = UnitKind::Pipeline;
    u.pipeline = std::move(params);
    u.inputMemories = std::move(input_mems);
    u.outputMemories = std::move(output_mems);
    spec_.units.push_back(std::move(u));
    return *this;
}

DesignBuilder &
DesignBuilder::systolicArray(SystolicArrayParams params,
                             std::vector<std::string> input_mems,
                             std::vector<std::string> output_mems)
{
    checkNewHardwareName(params.name);
    SystolicArray probe(params);
    (void)probe;
    checkMemoryRefs(input_mems, "systolicArray('" + params.name +
                                    "').inputMemories");
    checkMemoryRefs(output_mems, "systolicArray('" + params.name +
                                     "').outputMemories");
    UnitSpec u;
    u.kind = UnitKind::Systolic;
    u.systolic = std::move(params);
    u.inputMemories = std::move(input_mems);
    u.outputMemories = std::move(output_mems);
    spec_.units.push_back(std::move(u));
    return *this;
}

DesignBuilder &
DesignBuilder::adcOutput(const std::string &mem_name)
{
    checkMemoryRefs({mem_name}, "adcOutput");
    spec_.adcOutputMemory = mem_name;
    return *this;
}

DesignBuilder &
DesignBuilder::connectMemoryToUnit(const std::string &mem_name,
                                   const std::string &unit_name)
{
    checkMemoryRefs({mem_name}, "connectMemoryToUnit");
    UnitSpec *u = findUnit(unit_name);
    if (u == nullptr)
        fatal("DesignBuilder %s: connectMemoryToUnit('%s', '%s'): no "
              "unit named '%s' (registered units: %s)",
              spec_.name.c_str(), mem_name.c_str(), unit_name.c_str(),
              unit_name.c_str(), knownUnitNames().c_str());
    u->inputMemories.push_back(mem_name);
    return *this;
}

DesignBuilder &
DesignBuilder::connectUnitToMemory(const std::string &unit_name,
                                   const std::string &mem_name)
{
    checkMemoryRefs({mem_name}, "connectUnitToMemory");
    UnitSpec *u = findUnit(unit_name);
    if (u == nullptr)
        fatal("DesignBuilder %s: connectUnitToMemory('%s', '%s'): no "
              "unit named '%s' (registered units: %s)",
              spec_.name.c_str(), unit_name.c_str(), mem_name.c_str(),
              unit_name.c_str(), knownUnitNames().c_str());
    u->outputMemories.push_back(mem_name);
    return *this;
}

DesignBuilder &
DesignBuilder::mipi(Energy energy_per_byte)
{
    if (energy_per_byte < 0.0)
        fatal("DesignBuilder %s: negative MIPI energy per byte",
              spec_.name.c_str());
    spec_.mipi.present = true;
    spec_.mipi.energyPerByte = energy_per_byte;
    return *this;
}

DesignBuilder &
DesignBuilder::tsv(Energy energy_per_byte)
{
    if (energy_per_byte < 0.0)
        fatal("DesignBuilder %s: negative uTSV energy per byte",
              spec_.name.c_str());
    spec_.tsv.present = true;
    spec_.tsv.energyPerByte = energy_per_byte;
    return *this;
}

DesignBuilder &
DesignBuilder::pipelineOutputBytes(int64_t bytes)
{
    if (bytes < 0)
        fatal("DesignBuilder %s: negative pipeline output bytes",
              spec_.name.c_str());
    spec_.pipelineOutputBytes = bytes;
    return *this;
}

DesignBuilder &
DesignBuilder::map(const std::string &stage_name,
                   const std::string &hw_name)
{
    if (!hasStage(stage_name))
        fatal("DesignBuilder %s: map('%s', '%s') references unknown "
              "stage '%s'", spec_.name.c_str(), stage_name.c_str(),
              hw_name.c_str(), stage_name.c_str());
    if (!hasHardware(hw_name)) {
        std::vector<std::string> known;
        for (const AnalogArraySpec &a : spec_.analogArrays)
            known.push_back(a.name);
        for (const MemorySpec &m : spec_.memories)
            known.push_back(m.name);
        for (const UnitSpec &u : spec_.units)
            known.push_back(u.name());
        fatal("DesignBuilder %s: map('%s', '%s') targets unknown "
              "hardware '%s' (registered hardware: %s)",
              spec_.name.c_str(), stage_name.c_str(), hw_name.c_str(),
              hw_name.c_str(), joinNames(known).c_str());
    }
    for (const auto &[stage, hw] : spec_.mapping) {
        if (stage == stage_name)
            fatal("DesignBuilder %s: stage '%s' is already mapped to "
                  "'%s'", spec_.name.c_str(), stage_name.c_str(),
                  hw.c_str());
    }
    spec_.mapping.emplace_back(stage_name, hw_name);
    return *this;
}

Design
DesignBuilder::build() const
{
    return spec_.materialize();
}

} // namespace camj::spec
