/**
 * @file
 * SweepGrid: parameterized spec templates — grid expansion declared
 * inside the spec file. A grid is a list of named axes, each naming a
 * spec field (by path) and the values it sweeps over; the cartesian
 * product of the axes defines the design points. The grid lives in a
 * "sweepGrid" block of an ordinary DesignSpec JSON document, so one
 * file describes an entire design-space study:
 *
 *   {
 *     "name": "detector", "fps": 30, ...,
 *     "sweepGrid": {
 *       "axes": [
 *         {"name": "rate", "path": "fps", "values": [1, 30, 120]},
 *         {"name": "node", "path": "memories[*].nodeNm",
 *          "values": [65, 130]}
 *       ]
 *     }
 *   }
 *
 * Paths are dot-separated member names; a segment may carry a
 * selector — `memories[ActBuf]` (element whose "name" is ActBuf),
 * `stages[2]` (index), `memories[*]` (every element). Expansion is
 * LAZY: GridSpecSource yields one point at a time off a shared parsed
 * base document, so a 10k-point grid never exists as a vector. Each
 * point's design name is suffixed with its coordinates
 * ("detector/rate=30,node=65"), keeping every point's identity stable
 * and diffable.
 */

#ifndef CAMJ_SPEC_GRID_H
#define CAMJ_SPEC_GRID_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spec/json.h"
#include "spec/source.h"
#include "spec/spec.h"

namespace camj::spec
{

// ----------------------------------------------------------- field paths

/**
 * One parsed segment of a spec field path ("memories[ActBuf].nodeNm"):
 * a member name plus an optional array selector — an index, an element
 * name, or "*". Shared by grid expansion, spec-diff application, and
 * the incremental evaluator's dependency table.
 */
struct SpecPathSegment
{
    std::string member;
    /** Array selector: an index, an element name, or "*". */
    std::string selector;
    bool hasSelector = false;
};

/** Parse a dot-separated spec field path into segments.
 *  @throws ConfigError on malformed paths (empty members/selectors). */
std::vector<SpecPathSegment> parseSpecPath(const std::string &path);

/** True when the selector is all digits (an array index). */
bool isIndexSelector(const std::string &selector);

/** One grid axis: a spec field and the values it sweeps over. */
struct GridAxis
{
    /** Axis label, used in expanded design names ("rate=30"). */
    std::string name;
    /** Spec-field path ("fps", "memories[ActBuf].nodeNm", ...). */
    std::string path;
    /** Values the axis takes; any JSON value the field accepts. */
    std::vector<json::Value> values;
};

/**
 * A serializable sweep declaration: named axes, expanded either as
 * the cartesian product of per-axis value lists (the classic grid) or
 * as an EXPLICIT point list — one axis-value tuple per design point,
 * for non-cartesian studies (coupled axes, pareto fronts, re-runs of
 * hand-picked points). With a point list, the axes contribute their
 * names and field paths and may omit "values":
 *
 *   "sweepGrid": {
 *     "axes": [{"name": "rate", "path": "fps"},
 *              {"name": "node", "path": "memories[*].nodeNm"}],
 *     "points": [[30, 65], [60, 65], [120, 45]]
 *   }
 */
struct SweepGrid
{
    std::vector<GridAxis> axes;

    /** Explicit axis-value tuples (JSON "points"); one inner vector
     *  per design point, one value per axis in axis order. When
     *  non-empty, the per-axis value lists are ignored for
     *  expansion. */
    std::vector<std::vector<json::Value>> pointList;

    /** Total design points: the explicit point count when a point
     *  list is declared, else the product of axis sizes (1 when no
     *  axes — the base spec itself). */
    size_t points() const;

    /** Structural validation: non-empty unique axis names,
     *  well-formed paths, non-empty value lists (cartesian mode) or
     *  axis-arity-matching tuples (point-list mode).
     *  @throws ConfigError. */
    void validate() const;
};

/** Grid -> its "sweepGrid" JSON block. */
json::Value gridToJson(const SweepGrid &grid);

/** "sweepGrid" JSON block -> grid. @throws ConfigError. */
SweepGrid gridFromJson(const json::Value &block);

/**
 * Set the field at @p path inside a spec JSON document to @p value.
 * Intermediate segments must resolve; the final member must already
 * exist in the document (a misspelled leaf is an error, not a silent
 * extra member) unless the enclosing object simply omits an optional
 * member, in which case set it in the base document first.
 *
 * @throws ConfigError naming the path and the first segment that
 *         failed to resolve.
 */
void applySpecOverride(json::Value &doc, const std::string &path,
                       const json::Value &value);

/**
 * The lazy cartesian expander: yields one DesignSpec per grid point
 * in row-major order (first axis outermost, last axis fastest).
 * Cheap per point — the base document is parsed once, every axis
 * path is parsed and resolved once, and each point PATCHES a pooled
 * workspace copy of the document in place (every axis target plus
 * the point name is overwritten per point, so no undo records are
 * needed); no text re-parse, no per-point document clone, no
 * pre-materialized vector. When axis paths may interfere (one a
 * prefix of another, or two paths that may alias one target),
 * expansion falls back to the clone-per-point path — resolved
 * targets would dangle inside a replaced subtree. Supports
 * concurrent pulls (sweep workers expand points in parallel off an
 * atomic cursor; workspaces are handed out under a mutex).
 */
class GridSpecSource : public IndexableSpecSource
{
  public:
    /**
     * Validates the grid against the base document up front: every
     * axis path must resolve and every axis VALUE must yield a spec
     * that still parses, so a bad grid fails here with its axis
     * named — never thousands of points into a sweep on a worker
     * thread. (One probe parse per axis value.)
     *
     * @throws ConfigError.
     */
    GridSpecSource(const DesignSpec &base, SweepGrid grid);

    GridSpecSource(const GridSpecSource &other);

    /** Out-of-line: the workspace pool holds an incomplete type
     *  here. */
    ~GridSpecSource() override;

    std::optional<DesignSpec> next() override;
    std::optional<size_t> sizeHint() const override { return total_; }
    bool concurrentPulls() const override { return true; }
    std::optional<DesignSpec> nextIndexed(size_t &index) override;

    /**
     * Two grid points differ exactly along the axes whose values
     * differ (plus the encoded point name), so the incremental
     * evaluator's spec diff is free for grid sweeps: the axis paths
     * are read straight off the coordinates. Thread-safe.
     */
    std::optional<std::vector<std::string>> changedPaths(
        size_t from, size_t to) const override;

    /** Rewind to the first point (not thread-safe). */
    void reset() { cursor_.store(0, std::memory_order_relaxed); }

    /** The spec of point @p index without advancing the stream. */
    DesignSpec at(size_t index) const override;
    size_t totalPoints() const override { return total_; }

  private:
    /** One reusable expansion buffer: a copy of the base document
     *  plus the per-axis override targets resolved into it once. */
    struct Workspace;

    json::Value baseDoc_;
    std::string baseName_;
    SweepGrid grid_;
    /** Axis paths parsed once at construction (same order as
     *  grid_.axes). */
    std::vector<std::vector<SpecPathSegment>> axisPaths_;
    /** True when two axis paths may resolve to non-disjoint targets:
     *  expansion then clones per point instead of caching resolved
     *  target pointers. */
    bool axesMayInterfere_ = false;
    size_t total_ = 0;
    std::atomic<size_t> cursor_{0};
    mutable std::mutex poolMutex_;
    mutable std::vector<std::unique_ptr<Workspace>> pool_;

    std::unique_ptr<Workspace> acquireWorkspace() const;
    void releaseWorkspace(std::unique_ptr<Workspace> ws) const;
};

/** Eager expansion, for small grids and tests. @throws ConfigError. */
std::vector<DesignSpec> expandGrid(const DesignSpec &base,
                                   const SweepGrid &grid);

// ------------------------------------------------------ sweep documents

/** A spec document plus its (possibly empty) sweepGrid block. */
struct SweepDocument
{
    DesignSpec base;
    SweepGrid grid;

    /** The lazy source over this document's grid. */
    GridSpecSource source() const { return {base, grid}; }
};

/** Parse a spec document, capturing the "sweepGrid" block when
 *  present. @throws ConfigError. */
SweepDocument sweepDocumentFromJson(const std::string &text);

/** Render base + sweepGrid back into one document. */
std::string toJson(const SweepDocument &doc);

/** Load a sweep document from a JSON file. @throws ConfigError. */
SweepDocument loadSweepFile(const std::string &path);

} // namespace camj::spec

#endif // CAMJ_SPEC_GRID_H
