#include "spec/spec.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace camj::spec
{

using json::Value;

// ------------------------------------------------------------ enum maps

const char *
componentKindName(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::Aps4T: return "aps4t";
      case ComponentKind::Aps3T: return "aps3t";
      case ComponentKind::Dps: return "dps";
      case ComponentKind::PwmPixel: return "pwm-pixel";
      case ComponentKind::DvsPixel: return "dvs-pixel";
      case ComponentKind::ColumnAdc: return "column-adc";
      case ComponentKind::SwitchedCapMac: return "sc-mac";
      case ComponentKind::ChargeAdder: return "charge-adder";
      case ComponentKind::Scaler: return "scaler";
      case ComponentKind::AbsUnit: return "abs-unit";
      case ComponentKind::MaxUnit: return "max-unit";
      case ComponentKind::Comparator: return "comparator";
      case ComponentKind::LogUnit: return "log-unit";
      case ComponentKind::PassiveAnalogMemory: return "passive-analog-memory";
      case ComponentKind::ActiveAnalogMemory: return "active-analog-memory";
      case ComponentKind::ChargeToVoltage: return "charge-to-voltage";
      case ComponentKind::CurrentToVoltage: return "current-to-voltage";
      case ComponentKind::TimeToVoltage: return "time-to-voltage";
      case ComponentKind::SampleHold: return "sample-hold";
      case ComponentKind::Custom: return "custom";
    }
    return "?";
}

const char *
cellClassName(CellClass cls)
{
    switch (cls) {
      case CellClass::Dynamic: return "dynamic";
      case CellClass::StaticBias: return "static-bias";
      case CellClass::NonLinear: return "non-linear";
    }
    return "?";
}

const char *
timingScopeName(TimingScope scope)
{
    switch (scope) {
      case TimingScope::SelfSlot: return "self-slot";
      case TimingScope::ComponentSpan: return "component-span";
      case TimingScope::Frame: return "frame";
    }
    return "?";
}

const char *
biasModeName(BiasMode mode)
{
    switch (mode) {
      case BiasMode::DirectDrive: return "direct-drive";
      case BiasMode::GmOverId: return "gm-over-id";
    }
    return "?";
}

namespace
{

/** All component kinds, for token lookup and error messages. */
const std::vector<ComponentKind> &
allComponentKinds()
{
    static const std::vector<ComponentKind> kinds = {
        ComponentKind::Aps4T, ComponentKind::Aps3T, ComponentKind::Dps,
        ComponentKind::PwmPixel, ComponentKind::DvsPixel,
        ComponentKind::ColumnAdc, ComponentKind::SwitchedCapMac,
        ComponentKind::ChargeAdder, ComponentKind::Scaler,
        ComponentKind::AbsUnit, ComponentKind::MaxUnit,
        ComponentKind::Comparator, ComponentKind::LogUnit,
        ComponentKind::PassiveAnalogMemory,
        ComponentKind::ActiveAnalogMemory,
        ComponentKind::ChargeToVoltage,
        ComponentKind::CurrentToVoltage,
        ComponentKind::TimeToVoltage, ComponentKind::SampleHold,
        ComponentKind::Custom,
    };
    return kinds;
}

const std::vector<CellClass> &
allCellClasses()
{
    static const std::vector<CellClass> classes = {
        CellClass::Dynamic, CellClass::StaticBias, CellClass::NonLinear,
    };
    return classes;
}

const std::vector<TimingScope> &
allTimingScopes()
{
    static const std::vector<TimingScope> scopes = {
        TimingScope::SelfSlot, TimingScope::ComponentSpan,
        TimingScope::Frame,
    };
    return scopes;
}

const std::vector<BiasMode> &
allBiasModes()
{
    static const std::vector<BiasMode> modes = {
        BiasMode::DirectDrive, BiasMode::GmOverId,
    };
    return modes;
}

const std::vector<SignalDomain> &
allSignalDomains()
{
    static const std::vector<SignalDomain> domains = {
        SignalDomain::Optical, SignalDomain::Charge,
        SignalDomain::Voltage, SignalDomain::Current,
        SignalDomain::Time, SignalDomain::Digital,
    };
    return domains;
}

/** Generic reverse lookup with a known-token error message. */
template <typename Enum, typename NameFn>
Enum
enumFromToken(const std::string &token, const std::vector<Enum> &all,
              NameFn name, const char *what)
{
    for (Enum e : all) {
        if (token == name(e))
            return e;
    }
    std::string known;
    for (Enum e : all)
        known += (known.empty() ? "" : ", ") + std::string(name(e));
    fatal("spec: unknown %s '%s' (known: %s)", what, token.c_str(),
          known.c_str());
}

const std::vector<StageOp> &
allStageOps()
{
    static const std::vector<StageOp> ops = {
        StageOp::Input, StageOp::Binning, StageOp::Conv2d,
        StageOp::DepthwiseConv2d, StageOp::FullyConnected,
        StageOp::MaxPool, StageOp::AvgPool, StageOp::ElementwiseSub,
        StageOp::ElementwiseAdd, StageOp::AbsDiff, StageOp::Threshold,
        StageOp::Scale, StageOp::LogResponse, StageOp::Absolute,
        StageOp::CompareSample, StageOp::Identity,
    };
    return ops;
}

const std::vector<Layer> &
allLayers()
{
    static const std::vector<Layer> layers = {
        Layer::Sensor, Layer::Compute, Layer::Dram, Layer::OffChip,
    };
    return layers;
}

const char *
analogRoleName(AnalogRole role)
{
    switch (role) {
      case AnalogRole::Sensing: return "sensing";
      case AnalogRole::Adc: return "adc";
      case AnalogRole::AnalogCompute: return "analog-compute";
      case AnalogRole::AnalogMemory: return "analog-memory";
    }
    return "?";
}

const std::vector<AnalogRole> &
allAnalogRoles()
{
    static const std::vector<AnalogRole> roles = {
        AnalogRole::Sensing, AnalogRole::Adc,
        AnalogRole::AnalogCompute, AnalogRole::AnalogMemory,
    };
    return roles;
}

const std::vector<MemoryKind> &
allMemoryKinds()
{
    static const std::vector<MemoryKind> kinds = {
        MemoryKind::Fifo, MemoryKind::LineBuffer,
        MemoryKind::DoubleBuffer, MemoryKind::FrameBuffer,
    };
    return kinds;
}

// --------------------------------------------------- shape/param helpers

Value
shapeToJson(const Shape &s)
{
    Value arr = Value::makeArray();
    arr.push(Value(s.width));
    arr.push(Value(s.height));
    arr.push(Value(s.channels));
    return arr;
}

Shape
shapeFromJson(const Value &v)
{
    const auto &arr = v.asArray();
    if (arr.empty() || arr.size() > 3)
        fatal("spec: a shape is a 1-3 element array, got %zu elements",
              arr.size());
    Shape s;
    s.width = arr[0].asInt();
    s.height = arr.size() > 1 ? arr[1].asInt() : 1;
    s.channels = arr.size() > 2 ? arr[2].asInt() : 1;
    return s;
}

Value
apsToJson(const ApsParams &p)
{
    Value o = Value::makeObject();
    o.set("photodiodeCap", Value(p.photodiodeCap));
    o.set("floatingDiffusionCap", Value(p.floatingDiffusionCap));
    o.set("columnLoadCap", Value(p.columnLoadCap));
    o.set("pixelSwing", Value(p.pixelSwing));
    o.set("vdda", Value(p.vdda));
    o.set("correlatedDoubleSampling", Value(p.correlatedDoubleSampling));
    o.set("pixelsPerComponent", Value(p.pixelsPerComponent));
    return o;
}

ApsParams
apsFromJson(const Value &o)
{
    ApsParams d;
    ApsParams p;
    p.photodiodeCap = o.getNumber("photodiodeCap", d.photodiodeCap);
    p.floatingDiffusionCap =
        o.getNumber("floatingDiffusionCap", d.floatingDiffusionCap);
    p.columnLoadCap = o.getNumber("columnLoadCap", d.columnLoadCap);
    p.pixelSwing = o.getNumber("pixelSwing", d.pixelSwing);
    p.vdda = o.getNumber("vdda", d.vdda);
    p.correlatedDoubleSampling =
        o.getBool("correlatedDoubleSampling", d.correlatedDoubleSampling);
    p.pixelsPerComponent = static_cast<int>(
        o.getInt("pixelsPerComponent", d.pixelsPerComponent));
    return p;
}

Value
adcToJson(const AdcParams &p)
{
    Value o = Value::makeObject();
    o.set("bits", Value(p.bits));
    o.set("energyPerConversionOverride",
          Value(p.energyPerConversionOverride));
    return o;
}

AdcParams
adcFromJson(const Value &o)
{
    AdcParams d;
    AdcParams p;
    p.bits = static_cast<int>(o.getInt("bits", d.bits));
    p.energyPerConversionOverride = o.getNumber(
        "energyPerConversionOverride", d.energyPerConversionOverride);
    return p;
}

Value
scToJson(const SwitchedCapParams &p)
{
    Value o = Value::makeObject();
    o.set("unitCap", Value(p.unitCap));
    o.set("numCaps", Value(p.numCaps));
    o.set("vswing", Value(p.vswing));
    o.set("vdda", Value(p.vdda));
    o.set("bits", Value(p.bits));
    o.set("active", Value(p.active));
    o.set("gain", Value(p.gain));
    o.set("gmOverId", Value(p.gmOverId));
    return o;
}

SwitchedCapParams
scFromJson(const Value &o)
{
    SwitchedCapParams d;
    SwitchedCapParams p;
    p.unitCap = o.getNumber("unitCap", d.unitCap);
    p.numCaps = static_cast<int>(o.getInt("numCaps", d.numCaps));
    p.vswing = o.getNumber("vswing", d.vswing);
    p.vdda = o.getNumber("vdda", d.vdda);
    p.bits = static_cast<int>(o.getInt("bits", d.bits));
    p.active = o.getBool("active", d.active);
    p.gain = o.getNumber("gain", d.gain);
    p.gmOverId = o.getNumber("gmOverId", d.gmOverId);
    return p;
}

Value
analogMemToJson(const AnalogMemoryParams &p)
{
    Value o = Value::makeObject();
    o.set("bits", Value(p.bits));
    o.set("vswing", Value(p.vswing));
    o.set("vdda", Value(p.vdda));
    o.set("storageCap", Value(p.storageCap));
    o.set("readoutLoadCap", Value(p.readoutLoadCap));
    o.set("readsPerValue", Value(p.readsPerValue));
    return o;
}

AnalogMemoryParams
analogMemFromJson(const Value &o)
{
    AnalogMemoryParams d;
    AnalogMemoryParams p;
    p.bits = static_cast<int>(o.getInt("bits", d.bits));
    p.vswing = o.getNumber("vswing", d.vswing);
    p.vdda = o.getNumber("vdda", d.vdda);
    p.storageCap = o.getNumber("storageCap", d.storageCap);
    p.readoutLoadCap = o.getNumber("readoutLoadCap", d.readoutLoadCap);
    p.readsPerValue =
        static_cast<int>(o.getInt("readsPerValue", d.readsPerValue));
    return p;
}

Value
convToJson(const ConverterParams &p)
{
    Value o = Value::makeObject();
    o.set("cap", Value(p.cap));
    o.set("bits", Value(p.bits));
    o.set("vswing", Value(p.vswing));
    o.set("vdda", Value(p.vdda));
    o.set("gmOverId", Value(p.gmOverId));
    return o;
}

ConverterParams
convFromJson(const Value &o)
{
    ConverterParams d;
    ConverterParams p;
    p.cap = o.getNumber("cap", d.cap);
    p.bits = static_cast<int>(o.getInt("bits", d.bits));
    p.vswing = o.getNumber("vswing", d.vswing);
    p.vdda = o.getNumber("vdda", d.vdda);
    p.gmOverId = o.getNumber("gmOverId", d.gmOverId);
    return p;
}

} // namespace

ComponentKind
componentKindFromName(const std::string &name)
{
    return enumFromToken(name, allComponentKinds(), componentKindName,
                         "component kind");
}

CellClass
cellClassFromName(const std::string &name)
{
    return enumFromToken(name, allCellClasses(), cellClassName,
                         "cell class");
}

TimingScope
timingScopeFromName(const std::string &name)
{
    return enumFromToken(name, allTimingScopes(), timingScopeName,
                         "timing scope");
}

BiasMode
biasModeFromName(const std::string &name)
{
    return enumFromToken(name, allBiasModes(), biasModeName,
                         "bias mode");
}

SignalDomain
signalDomainFromName(const std::string &name)
{
    return enumFromToken(name, allSignalDomains(), signalDomainName,
                         "signal domain");
}

const char *
memoryModelName(MemoryModel model)
{
    switch (model) {
      case MemoryModel::Explicit: return "explicit";
      case MemoryModel::Sram: return "sram";
      case MemoryModel::Sttram: return "sttram";
      case MemoryModel::Regfile: return "regfile";
    }
    return "?";
}

MemoryModel
memoryModelFromName(const std::string &name)
{
    static const std::vector<MemoryModel> all = {
        MemoryModel::Explicit, MemoryModel::Sram, MemoryModel::Sttram,
        MemoryModel::Regfile,
    };
    return enumFromToken(name, all, memoryModelName, "memory model");
}

// --------------------------------------------------------- instantiation

std::shared_ptr<const ACell>
CellSpec::instantiate() const
{
    switch (cls) {
      case CellClass::Dynamic:
        return std::make_shared<DynamicCell>(name, caps);
      case CellClass::StaticBias:
        return std::make_shared<StaticBiasedCell>(name, bias);
      case CellClass::NonLinear:
        return std::make_shared<NonLinearCell>(name, bits,
                                               energyOverride);
    }
    panic("CellSpec: unknown cell class %d", static_cast<int>(cls));
}

AComponent
ComponentSpec::instantiate() const
{
    switch (kind) {
      case ComponentKind::Aps4T:
        return makeAps4T(aps);
      case ComponentKind::Aps3T:
        return makeAps3T(aps);
      case ComponentKind::Dps:
        return makeDps(adc.bits, aps);
      case ComponentKind::PwmPixel:
        return makePwmPixel(aps);
      case ComponentKind::DvsPixel:
        return makeDvsPixel(aps);
      case ComponentKind::ColumnAdc:
        return makeColumnAdc(adc);
      case ComponentKind::SwitchedCapMac:
        return makeSwitchedCapMac(sc);
      case ComponentKind::ChargeAdder:
        return makeChargeAdder(sc);
      case ComponentKind::Scaler:
        return makeScaler(sc);
      case ComponentKind::AbsUnit:
        return makeAbsUnit(sc);
      case ComponentKind::MaxUnit:
        return makeMaxUnit(maxInputs);
      case ComponentKind::Comparator:
        return makeComparator(comparatorEnergyOverride);
      case ComponentKind::LogUnit:
        return makeLogUnit(logLoadCap, logVdda);
      case ComponentKind::PassiveAnalogMemory:
        return makePassiveAnalogMemory(analogMem);
      case ComponentKind::ActiveAnalogMemory:
        return makeActiveAnalogMemory(analogMem);
      case ComponentKind::ChargeToVoltage:
        return makeChargeToVoltage(conv);
      case ComponentKind::CurrentToVoltage:
        return makeCurrentToVoltage(conv);
      case ComponentKind::TimeToVoltage:
        return makeTimeToVoltage(conv);
      case ComponentKind::SampleHold:
        return makeSampleHold(conv);
      case ComponentKind::Custom: {
        if (custom.name.empty())
            fatal("ComponentSpec: custom component field 'custom.name' "
                  "is empty");
        if (custom.cells.empty())
            fatal("ComponentSpec: custom component '%s' field "
                  "'custom.cells' is empty (a cell chain needs at "
                  "least one cell)", custom.name.c_str());
        AComponent c(custom.name, custom.input, custom.output);
        for (const CellSpec &cell : custom.cells)
            c.addCell(cell.instantiate(), cell.spatial, cell.temporal,
                      cell.scope);
        return c;
      }
    }
    panic("ComponentSpec: unknown kind %d", static_cast<int>(kind));
}

DigitalMemory
MemorySpec::instantiate() const
{
    switch (model) {
      case MemoryModel::Sram:
        return makeSramMemory(name, layer, kind, capacityWords,
                              wordBits, nodeNm, activeFraction);
      case MemoryModel::Sttram:
        return makeSttramMemory(name, layer, kind, capacityWords,
                                wordBits, nodeNm, activeFraction);
      case MemoryModel::Regfile:
        return makeRegfileMemory(name, layer, kind, capacityWords,
                                 wordBits, nodeNm, activeFraction);
      case MemoryModel::Explicit: {
        DigitalMemoryParams p;
        p.name = name;
        p.layer = layer;
        p.kind = kind;
        p.capacityWords = capacityWords;
        p.wordBits = wordBits;
        p.readEnergyPerWord = readEnergyPerWord;
        p.writeEnergyPerWord = writeEnergyPerWord;
        p.leakagePower = leakagePower;
        p.activeFraction = activeFraction;
        p.readPorts = readPorts;
        p.writePorts = writePorts;
        p.area = area;
        return DigitalMemory(p);
      }
    }
    panic("MemorySpec: unknown model %d", static_cast<int>(model));
}

const std::string &
UnitSpec::name() const
{
    return kind == UnitKind::Pipeline ? pipeline.name : systolic.name;
}

// ---------------------------------------------------------- diagnostics

std::string
joinNames(const std::vector<std::string> &names)
{
    if (names.empty())
        return "<none>";
    std::string out;
    for (const std::string &n : names)
        out += (out.empty() ? "" : ", ") + n;
    return out;
}

// ------------------------------------------------------------ validation

void
DesignSpec::validate() const
{
    if (name.empty())
        fatal("DesignSpec: empty design name");
    if (fps <= 0.0)
        fatal("DesignSpec %s: fps must be positive", name.c_str());
    if (digitalClock <= 0.0)
        fatal("DesignSpec %s: digital clock must be positive",
              name.c_str());

    // Stage names unique; producers resolve; arity matches.
    std::set<std::string> stageNames;
    for (const StageSpec &s : stages) {
        if (s.params.name.empty())
            fatal("DesignSpec %s: a stage has an empty name",
                  name.c_str());
        if (!stageNames.insert(s.params.name).second)
            fatal("DesignSpec %s: duplicate stage '%s'", name.c_str(),
                  s.params.name.c_str());
    }
    for (const StageSpec &s : stages) {
        const int arity = stageOpArity(s.params.op);
        if (static_cast<int>(s.inputs.size()) != arity)
            fatal("DesignSpec %s: stage '%s' (%s) needs %d input(s), "
                  "spec lists %zu", name.c_str(),
                  s.params.name.c_str(), stageOpName(s.params.op),
                  arity, s.inputs.size());
        for (const std::string &in : s.inputs) {
            if (!stageNames.count(in))
                fatal("DesignSpec %s: stage '%s' reads unknown stage "
                      "'%s'", name.c_str(), s.params.name.c_str(),
                      in.c_str());
        }
    }

    // Hardware names unique across every hardware class.
    std::set<std::string> hwNames;
    auto addHw = [&](const std::string &hw, const char *what) {
        if (hw.empty())
            fatal("DesignSpec %s: a %s has an empty name",
                  name.c_str(), what);
        if (!hwNames.insert(hw).second)
            fatal("DesignSpec %s: duplicate hardware name '%s'",
                  name.c_str(), hw.c_str());
    };
    std::set<std::string> memNames;
    for (const AnalogArraySpec &a : analogArrays)
        addHw(a.name, "analog array");
    for (const MemorySpec &m : memories) {
        addHw(m.name, "memory");
        memNames.insert(m.name);
    }
    for (const UnitSpec &u : units)
        addHw(u.name(), "digital unit");

    // Wiring references resolve to memories. Errors name the exact
    // spec field holding the dangling reference so a bad JSON document
    // can be fixed without reading the materializer.
    auto needMem = [&](const std::string &mem, const std::string &field) {
        if (!memNames.count(mem)) {
            fatal("DesignSpec %s: field '%s' references unknown memory "
                  "'%s' (registered memories: %s)", name.c_str(),
                  field.c_str(), mem.c_str(),
                  joinNames({memNames.begin(), memNames.end()})
                      .c_str());
        }
    };
    for (const UnitSpec &u : units) {
        for (size_t i = 0; i < u.inputMemories.size(); ++i)
            needMem(u.inputMemories[i],
                    "units['" + u.name() + "'].inputMemories[" +
                        std::to_string(i) + "]");
        for (size_t i = 0; i < u.outputMemories.size(); ++i)
            needMem(u.outputMemories[i],
                    "units['" + u.name() + "'].outputMemories[" +
                        std::to_string(i) + "]");
    }
    if (!adcOutputMemory.empty())
        needMem(adcOutputMemory, "adcOutputMemory");

    // Mapping targets exist; no stage mapped twice.
    std::set<std::string> mapped;
    for (const auto &[stage, hw] : mapping) {
        if (!stageNames.count(stage))
            fatal("DesignSpec %s: field 'mapping' references unknown "
                  "stage '%s'", name.c_str(), stage.c_str());
        if (!hwNames.count(hw)) {
            fatal("DesignSpec %s: field 'mapping[\"%s\"]' targets "
                  "unknown hardware '%s' (registered hardware: %s)",
                  name.c_str(), stage.c_str(), hw.c_str(),
                  joinNames({hwNames.begin(), hwNames.end()}).c_str());
        }
        if (!mapped.insert(stage).second)
            fatal("DesignSpec %s: field 'mapping' lists stage '%s' "
                  "twice", name.c_str(), stage.c_str());
    }
}

// --------------------------------------------------------- materialize

Design
DesignSpec::materialize(MaterializeCache *cache) const
{
    validate();

    Design d(DesignParams{name, fps, digitalClock});

    // Algorithm DAG. Stage order defines StageIds and the topological
    // tiebreak, so spec order is preserved exactly.
    SwGraph &sw = d.sw();
    for (const StageSpec &s : stages)
        sw.addStage(s.params);
    for (const StageSpec &s : stages) {
        StageId consumer = sw.findStage(s.params.name);
        for (const std::string &in : s.inputs)
            sw.connect(sw.findStage(in), consumer);
    }

    // Hardware, in declaration order (= analog chain / report order).
    for (const AnalogArraySpec &a : analogArrays) {
        AnalogArrayParams p;
        p.name = a.name;
        p.layer = a.layer;
        p.numComponents = a.numComponents;
        p.inputShape = a.inputShape;
        p.outputShape = a.outputShape;
        p.componentArea = a.componentArea;
        d.addAnalogArray(
            AnalogArray(p, cache != nullptr
                               ? cache->component(a.component)
                               : a.component.instantiate()),
            a.role);
    }
    for (const MemorySpec &m : memories)
        d.addMemory(m.instantiate());
    for (const UnitSpec &u : units) {
        if (u.kind == UnitKind::Pipeline)
            d.addComputeUnit(ComputeUnit(u.pipeline));
        else
            d.addSystolicArray(SystolicArray(u.systolic));
    }

    if (!adcOutputMemory.empty())
        d.setAdcOutput(adcOutputMemory);
    for (const UnitSpec &u : units) {
        for (const std::string &m : u.inputMemories)
            d.connectMemoryToUnit(m, u.name());
        for (const std::string &m : u.outputMemories)
            d.connectUnitToMemory(u.name(), m);
    }

    if (mipi.present) {
        d.setMipi(makeMipiCsi2(mipi.energyPerByte > 0.0
                                   ? mipi.energyPerByte
                                   : mipiDefaultEnergyPerByte));
    }
    if (tsv.present) {
        d.setTsv(makeMicroTsv(tsv.energyPerByte > 0.0
                                  ? tsv.energyPerByte
                                  : tsvDefaultEnergyPerByte));
    }
    if (pipelineOutputBytes >= 0)
        d.setPipelineOutputBytes(pipelineOutputBytes);

    for (const auto &[stage, hw] : mapping)
        d.mapping().map(stage, hw);

    return d;
}

// -------------------------------------------------------- serialization

namespace
{

Value
cellToJson(const CellSpec &cell)
{
    Value o = Value::makeObject();
    o.set("class", Value(cellClassName(cell.cls)));
    o.set("name", Value(cell.name));
    switch (cell.cls) {
      case CellClass::Dynamic: {
        Value caps = Value::makeArray();
        for (const CapNode &n : cell.caps) {
            Value cap = Value::makeObject();
            cap.set("capacitance", Value(n.capacitance));
            cap.set("swing", Value(n.voltageSwing));
            caps.push(std::move(cap));
        }
        o.set("caps", std::move(caps));
        break;
      }
      case CellClass::StaticBias: {
        Value b = Value::makeObject();
        b.set("loadCapacitance", Value(cell.bias.loadCapacitance));
        b.set("voltageSwing", Value(cell.bias.voltageSwing));
        b.set("vdda", Value(cell.bias.vdda));
        b.set("gain", Value(cell.bias.gain));
        b.set("gmOverId", Value(cell.bias.gmOverId));
        b.set("fixedBandwidth", Value(cell.bias.fixedBandwidth));
        b.set("mode", Value(biasModeName(cell.bias.mode)));
        o.set("bias", std::move(b));
        break;
      }
      case CellClass::NonLinear:
        o.set("bits", Value(cell.bits));
        o.set("energyOverride", Value(cell.energyOverride));
        break;
    }
    o.set("spatial", Value(cell.spatial));
    o.set("temporal", Value(cell.temporal));
    o.set("scope", Value(timingScopeName(cell.scope)));
    return o;
}

CellSpec
cellFromJson(const Value &o)
{
    CellSpec cell;
    cell.cls = cellClassFromName(o.at("class").asString());
    cell.name = o.at("name").asString();
    if (const Value *v = o.find("caps")) {
        for (const Value &cap : v->asArray()) {
            // Both keys are required: a defaulted 0 F / 0 V node
            // would silently zero the cell's energy.
            CapNode n;
            n.capacitance = cap.at("capacitance").asNumber();
            n.voltageSwing = cap.at("swing").asNumber();
            cell.caps.push_back(n);
        }
    }
    if (const Value *v = o.find("bias")) {
        StaticBiasParams d;
        cell.bias.loadCapacitance =
            v->getNumber("loadCapacitance", d.loadCapacitance);
        cell.bias.voltageSwing =
            v->getNumber("voltageSwing", d.voltageSwing);
        cell.bias.vdda = v->getNumber("vdda", d.vdda);
        cell.bias.gain = v->getNumber("gain", d.gain);
        cell.bias.gmOverId = v->getNumber("gmOverId", d.gmOverId);
        cell.bias.fixedBandwidth =
            v->getNumber("fixedBandwidth", d.fixedBandwidth);
        cell.bias.mode = biasModeFromName(
            v->getString("mode", biasModeName(d.mode)));
    }
    cell.bits = static_cast<int>(o.getInt("bits", cell.bits));
    cell.energyOverride =
        o.getNumber("energyOverride", cell.energyOverride);
    cell.spatial = static_cast<int>(o.getInt("spatial", 1));
    cell.temporal = static_cast<int>(o.getInt("temporal", 1));
    cell.scope = timingScopeFromName(
        o.getString("scope", timingScopeName(TimingScope::SelfSlot)));
    return cell;
}

Value
customToJson(const CustomComponentSpec &c)
{
    Value o = Value::makeObject();
    o.set("name", Value(c.name));
    o.set("inputDomain", Value(signalDomainName(c.input)));
    o.set("outputDomain", Value(signalDomainName(c.output)));
    Value cells = Value::makeArray();
    for (const CellSpec &cell : c.cells)
        cells.push(cellToJson(cell));
    o.set("cells", std::move(cells));
    return o;
}

CustomComponentSpec
customFromJson(const Value &o)
{
    CustomComponentSpec c;
    c.name = o.at("name").asString();
    c.input = signalDomainFromName(o.at("inputDomain").asString());
    c.output = signalDomainFromName(o.at("outputDomain").asString());
    if (const Value *v = o.find("cells")) {
        for (const Value &cell : v->asArray())
            c.cells.push_back(cellFromJson(cell));
    }
    return c;
}

Value
componentToJson(const ComponentSpec &c)
{
    Value o = Value::makeObject();
    o.set("kind", Value(componentKindName(c.kind)));
    switch (c.kind) {
      case ComponentKind::Aps4T:
      case ComponentKind::Aps3T:
      case ComponentKind::PwmPixel:
      case ComponentKind::DvsPixel:
        o.set("aps", apsToJson(c.aps));
        break;
      case ComponentKind::Dps:
        o.set("aps", apsToJson(c.aps));
        o.set("adc", adcToJson(c.adc));
        break;
      case ComponentKind::ColumnAdc:
        o.set("adc", adcToJson(c.adc));
        break;
      case ComponentKind::SwitchedCapMac:
      case ComponentKind::ChargeAdder:
      case ComponentKind::Scaler:
      case ComponentKind::AbsUnit:
        o.set("switchedCap", scToJson(c.sc));
        break;
      case ComponentKind::MaxUnit:
        o.set("maxInputs", Value(c.maxInputs));
        break;
      case ComponentKind::Comparator:
        o.set("energyOverride", Value(c.comparatorEnergyOverride));
        break;
      case ComponentKind::LogUnit:
        o.set("loadCap", Value(c.logLoadCap));
        o.set("vdda", Value(c.logVdda));
        break;
      case ComponentKind::PassiveAnalogMemory:
      case ComponentKind::ActiveAnalogMemory:
        o.set("analogMemory", analogMemToJson(c.analogMem));
        break;
      case ComponentKind::ChargeToVoltage:
      case ComponentKind::CurrentToVoltage:
      case ComponentKind::TimeToVoltage:
      case ComponentKind::SampleHold:
        o.set("converter", convToJson(c.conv));
        break;
      case ComponentKind::Custom:
        o.set("custom", customToJson(c.custom));
        break;
    }
    return o;
}

ComponentSpec
componentFromJson(const Value &o)
{
    ComponentSpec c;
    c.kind = componentKindFromName(o.at("kind").asString());
    if (const Value *v = o.find("custom"))
        c.custom = customFromJson(*v);
    if (const Value *v = o.find("aps"))
        c.aps = apsFromJson(*v);
    if (const Value *v = o.find("adc"))
        c.adc = adcFromJson(*v);
    if (const Value *v = o.find("switchedCap"))
        c.sc = scFromJson(*v);
    if (const Value *v = o.find("analogMemory"))
        c.analogMem = analogMemFromJson(*v);
    if (const Value *v = o.find("converter"))
        c.conv = convFromJson(*v);
    c.maxInputs = static_cast<int>(o.getInt("maxInputs", c.maxInputs));
    c.comparatorEnergyOverride =
        o.getNumber("energyOverride", c.comparatorEnergyOverride);
    c.logLoadCap = o.getNumber("loadCap", c.logLoadCap);
    c.logVdda = o.getNumber("vdda", c.logVdda);
    return c;
}

Value
stageToJson(const StageSpec &s)
{
    Value o = Value::makeObject();
    o.set("name", Value(s.params.name));
    o.set("op", Value(stageOpName(s.params.op)));
    if (s.params.op != StageOp::Input)
        o.set("inputSize", shapeToJson(s.params.inputSize));
    o.set("outputSize", shapeToJson(s.params.outputSize));
    o.set("kernel", shapeToJson(s.params.kernel));
    o.set("stride", shapeToJson(s.params.stride));
    o.set("bitDepth", Value(s.params.bitDepth));
    if (s.params.opsPerOutputOverride != 0)
        o.set("opsPerOutput", Value(s.params.opsPerOutputOverride));
    Value ins = Value::makeArray();
    for (const std::string &in : s.inputs)
        ins.push(Value(in));
    o.set("inputs", std::move(ins));
    return o;
}

StageSpec
stageFromJson(const Value &o)
{
    StageSpec s;
    s.params.name = o.at("name").asString();
    s.params.op = enumFromToken(o.at("op").asString(), allStageOps(),
                                stageOpName, "stage op");
    if (const Value *v = o.find("inputSize"))
        s.params.inputSize = shapeFromJson(*v);
    s.params.outputSize = shapeFromJson(o.at("outputSize"));
    if (const Value *v = o.find("kernel"))
        s.params.kernel = shapeFromJson(*v);
    if (const Value *v = o.find("stride"))
        s.params.stride = shapeFromJson(*v);
    s.params.bitDepth = static_cast<int>(o.getInt("bitDepth", 8));
    s.params.opsPerOutputOverride = o.getInt("opsPerOutput", 0);
    if (const Value *v = o.find("inputs")) {
        for (const Value &in : v->asArray())
            s.inputs.push_back(in.asString());
    }
    return s;
}

Value
analogArrayToJson(const AnalogArraySpec &a)
{
    Value o = Value::makeObject();
    o.set("name", Value(a.name));
    o.set("layer", Value(layerName(a.layer)));
    o.set("role", Value(analogRoleName(a.role)));
    o.set("numComponents", shapeToJson(a.numComponents));
    o.set("inputShape", shapeToJson(a.inputShape));
    o.set("outputShape", shapeToJson(a.outputShape));
    o.set("componentArea", Value(a.componentArea));
    o.set("component", componentToJson(a.component));
    return o;
}

AnalogArraySpec
analogArrayFromJson(const Value &o)
{
    AnalogArraySpec a;
    a.name = o.at("name").asString();
    a.layer = enumFromToken(o.getString("layer", "sensor"),
                            allLayers(), layerName, "layer");
    a.role = enumFromToken(o.at("role").asString(), allAnalogRoles(),
                           analogRoleName, "analog role");
    a.numComponents = shapeFromJson(o.at("numComponents"));
    if (const Value *v = o.find("inputShape"))
        a.inputShape = shapeFromJson(*v);
    if (const Value *v = o.find("outputShape"))
        a.outputShape = shapeFromJson(*v);
    a.componentArea = o.getNumber("componentArea", 0.0);
    a.component = componentFromJson(o.at("component"));
    return a;
}

Value
memoryToJson(const MemorySpec &m)
{
    Value o = Value::makeObject();
    o.set("name", Value(m.name));
    o.set("layer", Value(layerName(m.layer)));
    o.set("kind", Value(memoryKindName(m.kind)));
    o.set("model", Value(memoryModelName(m.model)));
    o.set("capacityWords", Value(m.capacityWords));
    o.set("wordBits", Value(m.wordBits));
    o.set("activeFraction", Value(m.activeFraction));
    if (m.model == MemoryModel::Explicit) {
        o.set("readEnergyPerWord", Value(m.readEnergyPerWord));
        o.set("writeEnergyPerWord", Value(m.writeEnergyPerWord));
        o.set("leakagePower", Value(m.leakagePower));
        o.set("readPorts", Value(m.readPorts));
        o.set("writePorts", Value(m.writePorts));
        o.set("area", Value(m.area));
    } else {
        o.set("nodeNm", Value(m.nodeNm));
    }
    return o;
}

MemorySpec
memoryFromJson(const Value &o)
{
    MemorySpec m;
    m.name = o.at("name").asString();
    m.layer = enumFromToken(o.getString("layer", "sensor"),
                            allLayers(), layerName, "layer");
    m.kind = enumFromToken(o.getString("kind", "fifo"),
                           allMemoryKinds(), memoryKindName,
                           "memory kind");
    m.model = memoryModelFromName(o.getString("model", "sram"));
    m.capacityWords = o.at("capacityWords").asInt();
    m.wordBits = static_cast<int>(o.getInt("wordBits", 8));
    m.nodeNm = static_cast<int>(o.getInt("nodeNm", 65));
    m.activeFraction = o.getNumber("activeFraction", 1.0);
    m.readEnergyPerWord = o.getNumber("readEnergyPerWord", 0.0);
    m.writeEnergyPerWord = o.getNumber("writeEnergyPerWord", 0.0);
    m.leakagePower = o.getNumber("leakagePower", 0.0);
    m.readPorts = static_cast<int>(o.getInt("readPorts", 1));
    m.writePorts = static_cast<int>(o.getInt("writePorts", 1));
    m.area = o.getNumber("area", 0.0);
    return m;
}

Value
unitToJson(const UnitSpec &u)
{
    Value o = Value::makeObject();
    if (u.kind == UnitKind::Pipeline) {
        const ComputeUnitParams &p = u.pipeline;
        o.set("kind", Value("pipeline"));
        o.set("name", Value(p.name));
        o.set("layer", Value(layerName(p.layer)));
        o.set("inputPixelsPerCycle", shapeToJson(p.inputPixelsPerCycle));
        o.set("outputPixelsPerCycle",
              shapeToJson(p.outputPixelsPerCycle));
        o.set("energyPerCycle", Value(p.energyPerCycle));
        o.set("numStages", Value(p.numStages));
        o.set("clock", Value(p.clock));
        o.set("opsPerCycle", Value(p.opsPerCycle));
        o.set("area", Value(p.area));
    } else {
        const SystolicArrayParams &p = u.systolic;
        o.set("kind", Value("systolic"));
        o.set("name", Value(p.name));
        o.set("layer", Value(layerName(p.layer)));
        o.set("rows", Value(p.rows));
        o.set("cols", Value(p.cols));
        o.set("energyPerMac", Value(p.energyPerMac));
        o.set("clock", Value(p.clock));
        o.set("peArea", Value(p.peArea));
    }
    Value ins = Value::makeArray();
    for (const std::string &m : u.inputMemories)
        ins.push(Value(m));
    o.set("inputMemories", std::move(ins));
    Value outs = Value::makeArray();
    for (const std::string &m : u.outputMemories)
        outs.push(Value(m));
    o.set("outputMemories", std::move(outs));
    return o;
}

UnitSpec
unitFromJson(const Value &o)
{
    UnitSpec u;
    const std::string kind = o.at("kind").asString();
    if (kind == "pipeline") {
        u.kind = UnitKind::Pipeline;
        ComputeUnitParams p;
        p.name = o.at("name").asString();
        p.layer = enumFromToken(o.getString("layer", "sensor"),
                                allLayers(), layerName, "layer");
        if (const Value *v = o.find("inputPixelsPerCycle"))
            p.inputPixelsPerCycle = shapeFromJson(*v);
        if (const Value *v = o.find("outputPixelsPerCycle"))
            p.outputPixelsPerCycle = shapeFromJson(*v);
        p.energyPerCycle = o.getNumber("energyPerCycle", 0.0);
        p.numStages = static_cast<int>(o.getInt("numStages", 1));
        p.clock = o.getNumber("clock", 50e6);
        p.opsPerCycle = o.getInt("opsPerCycle", 0);
        p.area = o.getNumber("area", 0.0);
        u.pipeline = std::move(p);
    } else if (kind == "systolic") {
        u.kind = UnitKind::Systolic;
        SystolicArrayParams p;
        p.name = o.at("name").asString();
        p.layer = enumFromToken(o.getString("layer", "sensor"),
                                allLayers(), layerName, "layer");
        p.rows = static_cast<int>(o.getInt("rows", 16));
        p.cols = static_cast<int>(o.getInt("cols", 16));
        p.energyPerMac = o.getNumber("energyPerMac", 0.0);
        p.clock = o.getNumber("clock", 100e6);
        p.peArea = o.getNumber("peArea", 0.0);
        u.systolic = std::move(p);
    } else {
        fatal("spec: unknown unit kind '%s' (known: pipeline, "
              "systolic)", kind.c_str());
    }
    if (const Value *v = o.find("inputMemories")) {
        for (const Value &m : v->asArray())
            u.inputMemories.push_back(m.asString());
    }
    if (const Value *v = o.find("outputMemories")) {
        for (const Value &m : v->asArray())
            u.outputMemories.push_back(m.asString());
    }
    return u;
}

} // namespace

json::Value
toJsonValue(const DesignSpec &spec)
{
    Value o = Value::makeObject();
    o.reserve(13);
    o.set("camjSpecVersion", Value(1));
    o.set("name", Value(spec.name));
    o.set("fps", Value(spec.fps));
    o.set("digitalClock", Value(spec.digitalClock));

    Value stages = Value::makeArray();
    stages.reserve(spec.stages.size());
    for (const StageSpec &s : spec.stages)
        stages.push(stageToJson(s));
    o.set("stages", std::move(stages));

    Value analog = Value::makeArray();
    analog.reserve(spec.analogArrays.size());
    for (const AnalogArraySpec &a : spec.analogArrays)
        analog.push(analogArrayToJson(a));
    o.set("analogArrays", std::move(analog));

    Value mems = Value::makeArray();
    mems.reserve(spec.memories.size());
    for (const MemorySpec &m : spec.memories)
        mems.push(memoryToJson(m));
    o.set("memories", std::move(mems));

    Value units = Value::makeArray();
    units.reserve(spec.units.size());
    for (const UnitSpec &u : spec.units)
        units.push(unitToJson(u));
    o.set("units", std::move(units));

    if (!spec.adcOutputMemory.empty())
        o.set("adcOutputMemory", Value(spec.adcOutputMemory));
    if (spec.mipi.present) {
        Value m = Value::makeObject();
        m.set("energyPerByte", Value(spec.mipi.energyPerByte));
        o.set("mipi", std::move(m));
    }
    if (spec.tsv.present) {
        Value t = Value::makeObject();
        t.set("energyPerByte", Value(spec.tsv.energyPerByte));
        o.set("tsv", std::move(t));
    }
    if (spec.pipelineOutputBytes >= 0)
        o.set("pipelineOutputBytes", Value(spec.pipelineOutputBytes));

    Value mapping = Value::makeArray();
    mapping.reserve(spec.mapping.size());
    for (const auto &[stage, hw] : spec.mapping) {
        Value pair = Value::makeObject();
        pair.set("stage", Value(stage));
        pair.set("hw", Value(hw));
        mapping.push(std::move(pair));
    }
    o.set("mapping", std::move(mapping));

    return o;
}

std::string
toJson(const DesignSpec &spec)
{
    return toJsonValue(spec).dump(2) + "\n";
}

DesignSpec
fromJsonValue(const Value &o)
{
    const int64_t version = o.getInt("camjSpecVersion", 1);
    if (version != 1)
        fatal("spec: unsupported camjSpecVersion %lld (this build "
              "reads version 1)", static_cast<long long>(version));

    DesignSpec spec;
    spec.name = o.at("name").asString();
    spec.fps = o.getNumber("fps", 30.0);
    spec.digitalClock = o.getNumber("digitalClock", 50e6);

    if (const Value *v = o.find("stages")) {
        for (const Value &s : v->asArray())
            spec.stages.push_back(stageFromJson(s));
    }
    if (const Value *v = o.find("analogArrays")) {
        for (const Value &a : v->asArray())
            spec.analogArrays.push_back(analogArrayFromJson(a));
    }
    if (const Value *v = o.find("memories")) {
        for (const Value &m : v->asArray())
            spec.memories.push_back(memoryFromJson(m));
    }
    if (const Value *v = o.find("units")) {
        for (const Value &u : v->asArray())
            spec.units.push_back(unitFromJson(u));
    }
    spec.adcOutputMemory = o.getString("adcOutputMemory", "");
    if (const Value *v = o.find("mipi")) {
        spec.mipi.present = true;
        spec.mipi.energyPerByte = v->getNumber("energyPerByte", 0.0);
    }
    if (const Value *v = o.find("tsv")) {
        spec.tsv.present = true;
        spec.tsv.energyPerByte = v->getNumber("energyPerByte", 0.0);
    }
    spec.pipelineOutputBytes = o.getInt("pipelineOutputBytes", -1);
    if (const Value *v = o.find("mapping")) {
        for (const Value &pair : v->asArray()) {
            spec.mapping.emplace_back(pair.at("stage").asString(),
                                      pair.at("hw").asString());
        }
    }
    return spec;
}

DesignSpec
fromJson(const std::string &text)
{
    return fromJsonValue(Value::parse(text));
}

// ------------------------------------------------------ delta caching

const AComponent &
MaterializeCache::component(const ComponentSpec &component)
{
    // The serialized parameter tree is a complete, deterministic key:
    // two specs with equal trees instantiate bit-identical components.
    // Its structural hash buckets the lookup; full tree equality
    // verifies each candidate, so a collision costs one comparison,
    // never a wrong component.
    json::Value params = componentToJson(component);
    std::vector<CachedComponent> &bucket =
        components_[params.hash()];
    for (const CachedComponent &entry : bucket) {
        if (entry.params == params) {
            ++hits_;
            return entry.component;
        }
    }
    ++misses_;
    bucket.push_back(
        CachedComponent{std::move(params), component.instantiate()});
    ++count_;
    return bucket.back().component;
}

void
MaterializeCache::clear()
{
    components_.clear();
    count_ = 0;
    hits_ = 0;
    misses_ = 0;
}

DesignSpec
loadSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("spec: cannot open '%s' for reading", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

void
saveSpecFile(const DesignSpec &spec, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("spec: cannot open '%s' for writing", path.c_str());
    out << toJson(spec);
    if (!out)
        fatal("spec: failed writing '%s'", path.c_str());
}

} // namespace camj::spec
