/**
 * @file
 * Reconstructed ISSCC/IEDM CIS survey dataset behind the paper's
 * Fig. 1 (share of computational and stacked-computational CIS per
 * year) and Fig. 3 (CIS process node vs. the IRDS CMOS roadmap vs.
 * pixel pitch). The original dataset is a manual literature survey
 * that is not published; this module synthesizes a per-design dataset
 * with the same aggregate shape (see DESIGN.md Sec. 3), generated
 * deterministically so every run reproduces identical trends.
 */

#ifndef CAMJ_SURVEY_DATASET_H
#define CAMJ_SURVEY_DATASET_H

#include <vector>

#include "common/stats.h"

namespace camj
{

/** One surveyed CIS design. */
struct SurveyEntry
{
    int year = 2000;
    /** Integrates processing beyond readout. */
    bool computational = false;
    /** 3D-stacked computational design. */
    bool stacked = false;
    /** Process node [nm]. */
    int processNm = 180;
    /** Pixel pitch [um]. */
    double pixelPitchUm = 6.0;
};

/** Per-year aggregate for Fig. 1. */
struct YearShare
{
    int year = 0;
    int total = 0;
    int computational = 0;
    int stackedComputational = 0;

    /** Percentage of computational designs (including stacked). */
    double computationalPct() const;
    /** Percentage of stacked computational designs. */
    double stackedPct() const;
};

/** The full reconstructed dataset (years 2000-2022). */
const std::vector<SurveyEntry> &cisSurvey();

/** Fig. 1 aggregation: one row per survey year. */
std::vector<YearShare> sharesByYear();

/** Fig. 3: least-squares fit of log2(CIS node) against year. */
LinearFit cisNodeTrend();

/** Fig. 3: least-squares fit of log2(pixel pitch) against year. */
LinearFit pixelPitchTrend();

/**
 * Fig. 3: IRDS/ITRS CMOS logic node for a year [nm].
 *
 * @param year Must be in [1998, 2030].
 * @throws ConfigError outside that range.
 */
double irdsCmosNode(int year);

} // namespace camj

#endif // CAMJ_SURVEY_DATASET_H
