#include "survey/dataset.h"

#include <cmath>

#include "common/logging.h"

namespace camj
{

double
YearShare::computationalPct() const
{
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(computational) /
           static_cast<double>(total);
}

double
YearShare::stackedPct() const
{
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(stackedComputational) /
           static_cast<double>(total);
}

namespace
{

/** Deterministic xorshift for reproducible synthetic jitter. */
class Rng
{
  public:
    explicit Rng(uint32_t seed) : state_(seed ? seed : 1u) {}

    /** Uniform in [0, 1). */
    double
    uniform()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return static_cast<double>(state_ % 100000u) / 100000.0;
    }

  private:
    uint32_t state_;
};

// CIS nodes actually seen in ISSCC/IEDM designs over the years.
const int cisNodeMenu[] = { 350, 250, 180, 130, 110, 90, 65, 45 };

std::vector<SurveyEntry>
buildSurvey()
{
    std::vector<SurveyEntry> entries;
    Rng rng(0xca3f5u);

    for (int year = 2000; year <= 2022; ++year) {
        double t = static_cast<double>(year - 2000) / 22.0;

        // 6-10 CIS papers per venue-year.
        int papers = 6 + static_cast<int>(rng.uniform() * 5.0);

        // Computational share ramps ~5% (2000) -> ~45% (2022);
        // stacked designs appear after 2012 and ramp to ~20%.
        double comp_share = 0.05 + 0.42 * t;
        double stacked_share =
            year < 2012 ? 0.0
                        : 0.22 * (static_cast<double>(year - 2012) / 10.0);

        // CIS node scaling tracks pixel-pitch scaling: a slow drift
        // from ~350 nm-class to ~65 nm-class over two decades.
        double node_center = 350.0 * std::pow(65.0 / 350.0, t);
        double pitch_center = 7.5 * std::pow(1.8 / 7.5, t);

        for (int p = 0; p < papers; ++p) {
            SurveyEntry e;
            e.year = year;
            double r = rng.uniform();
            e.computational = r < comp_share;
            e.stacked = e.computational &&
                        rng.uniform() < (stacked_share /
                                         std::max(comp_share, 1e-9));

            // Snap the node to the nearest menu entry around the
            // trend center (designs cluster on foundry offerings).
            double jittered =
                node_center * std::pow(2.0, (rng.uniform() - 0.5) * 0.8);
            int best = cisNodeMenu[0];
            double best_err = 1e9;
            for (int candidate : cisNodeMenu) {
                double err = std::fabs(std::log(
                    static_cast<double>(candidate) / jittered));
                if (err < best_err) {
                    best_err = err;
                    best = candidate;
                }
            }
            e.processNm = best;
            e.pixelPitchUm =
                pitch_center * std::pow(2.0, (rng.uniform() - 0.5) * 0.7);
            entries.push_back(e);
        }
    }
    return entries;
}

} // namespace

const std::vector<SurveyEntry> &
cisSurvey()
{
    static const std::vector<SurveyEntry> dataset = buildSurvey();
    return dataset;
}

std::vector<YearShare>
sharesByYear()
{
    std::vector<YearShare> shares;
    for (const SurveyEntry &e : cisSurvey()) {
        if (shares.empty() || shares.back().year != e.year) {
            YearShare ys;
            ys.year = e.year;
            shares.push_back(ys);
        }
        YearShare &ys = shares.back();
        ++ys.total;
        if (e.computational)
            ++ys.computational;
        if (e.stacked)
            ++ys.stackedComputational;
    }
    return shares;
}

LinearFit
cisNodeTrend()
{
    std::vector<double> years, log_nodes;
    for (const SurveyEntry &e : cisSurvey()) {
        years.push_back(static_cast<double>(e.year));
        log_nodes.push_back(std::log2(static_cast<double>(e.processNm)));
    }
    return linearFit(years, log_nodes);
}

LinearFit
pixelPitchTrend()
{
    std::vector<double> years, log_pitches;
    for (const SurveyEntry &e : cisSurvey()) {
        years.push_back(static_cast<double>(e.year));
        log_pitches.push_back(std::log2(e.pixelPitchUm));
    }
    return linearFit(years, log_pitches);
}

double
irdsCmosNode(int year)
{
    if (year < 1998 || year > 2030)
        fatal("irdsCmosNode: year %d outside [1998, 2030]", year);

    // ITRS/IRDS logic roadmap anchor points.
    struct Point { int year; double nm; };
    static const Point roadmap[] = {
        { 1999, 180.0 }, { 2001, 130.0 }, { 2004, 90.0 },
        { 2006, 65.0 }, { 2008, 45.0 }, { 2010, 32.0 },
        { 2012, 22.0 }, { 2014, 16.0 }, { 2017, 10.0 },
        { 2019, 7.0 }, { 2021, 5.0 }, { 2023, 3.0 },
    };

    if (year <= roadmap[0].year)
        return roadmap[0].nm;
    const size_t n = sizeof(roadmap) / sizeof(roadmap[0]);
    if (year >= roadmap[n - 1].year)
        return roadmap[n - 1].nm;

    for (size_t i = 1; i < n; ++i) {
        if (year <= roadmap[i].year) {
            double t = static_cast<double>(year - roadmap[i - 1].year) /
                       static_cast<double>(roadmap[i].year -
                                           roadmap[i - 1].year);
            return std::exp(std::log(roadmap[i - 1].nm) +
                            t * (std::log(roadmap[i].nm) -
                                 std::log(roadmap[i - 1].nm)));
        }
    }
    panic("irdsCmosNode: roadmap scan fell through");
}

} // namespace camj
