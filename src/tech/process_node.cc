#include "tech/process_node.h"

#include <array>
#include <cmath>

#include "common/logging.h"

namespace camj
{

namespace
{

// Table rows sorted by descending feature size. relEnergy/relArea are
// normalized to 65 nm. sramLeakPerBit is in watts per bit.
constexpr std::array<NodeParams, 14> nodeTable = {{
    // nm    vdd   vdda  relE   relA    leak/bit
    { 180, 1.80, 3.30, 5.10, 7.70, 0.020e-9 },
    { 130, 1.20, 2.80, 2.60, 4.00, 0.150e-9 },
    { 110, 1.20, 2.80, 1.90, 2.90, 0.350e-9 },
    {  90, 1.00, 2.50, 1.50, 1.90, 1.200e-9 },
    {  65, 1.00, 2.50, 1.00, 1.00, 4.000e-9 },
    {  45, 0.90, 2.50, 0.62, 0.48, 2.400e-9 },
    {  40, 0.90, 2.50, 0.55, 0.38, 2.100e-9 },
    {  32, 0.90, 2.50, 0.40, 0.24, 1.500e-9 },
    {  28, 0.85, 2.50, 0.33, 0.19, 1.000e-9 },
    {  22, 0.80, 2.50, 0.24, 0.115, 1.200e-9 },
    {  16, 0.75, 1.80, 0.16, 0.061, 0.500e-9 },
    {  14, 0.70, 1.80, 0.14, 0.046, 0.450e-9 },
    {  10, 0.65, 1.80, 0.09, 0.024, 0.400e-9 },
    {   7, 0.65, 1.80, 0.06, 0.012, 0.350e-9 },
}};

// Log-log interpolation between two strictly-positive samples.
double
loglogInterp(double x, double x0, double y0, double x1, double y1)
{
    double t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
    return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
}

// Linear interpolation in log(node) for quantities that may not be
// positive-definite ratios (supply voltages).
double
semilogInterp(double x, double x0, double y0, double x1, double y1)
{
    double t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
    return y0 + t * (y1 - y0);
}

} // namespace

NodeParams
nodeParams(int nm)
{
    if (nm < 7 || nm > 250)
        fatal("process node %d nm outside supported range [7, 250]", nm);

    // Clamp above the largest table entry: treat >=180 nm as 180 nm
    // electrically (the paper's oldest validation node is 180 nm).
    if (nm >= nodeTable.front().nm) {
        NodeParams p = nodeTable.front();
        p.nm = nm;
        return p;
    }

    for (size_t i = 0; i < nodeTable.size(); ++i) {
        if (nodeTable[i].nm == nm)
            return nodeTable[i];
        if (nodeTable[i].nm < nm) {
            const NodeParams &hi = nodeTable[i - 1];
            const NodeParams &lo = nodeTable[i];
            NodeParams p;
            p.nm = nm;
            p.vdd = semilogInterp(nm, hi.nm, hi.vdd, lo.nm, lo.vdd);
            p.vdda = semilogInterp(nm, hi.nm, hi.vdda, lo.nm, lo.vdda);
            p.relEnergy = loglogInterp(nm, hi.nm, hi.relEnergy, lo.nm,
                                       lo.relEnergy);
            p.relArea = loglogInterp(nm, hi.nm, hi.relArea, lo.nm,
                                     lo.relArea);
            p.sramLeakPerBit = loglogInterp(nm, hi.nm, hi.sramLeakPerBit,
                                            lo.nm, lo.sramLeakPerBit);
            return p;
        }
    }
    return nodeTable.back(); // nm == 7 handled above; unreachable guard
}

std::vector<int>
tabulatedNodes()
{
    std::vector<int> nodes;
    nodes.reserve(nodeTable.size());
    for (const auto &row : nodeTable)
        nodes.push_back(row.nm);
    return nodes;
}

} // namespace camj
