#include "tech/scaling.h"

#include "tech/process_node.h"

namespace camj
{

double
energyScaleFactor(int from_nm, int to_nm)
{
    return nodeParams(to_nm).relEnergy / nodeParams(from_nm).relEnergy;
}

double
areaScaleFactor(int from_nm, int to_nm)
{
    return nodeParams(to_nm).relArea / nodeParams(from_nm).relArea;
}

Energy
scaleEnergy(Energy energy, int from_nm, int to_nm)
{
    return energy * energyScaleFactor(from_nm, to_nm);
}

Area
scaleArea(Area area, int from_nm, int to_nm)
{
    return area * areaScaleFactor(from_nm, to_nm);
}

Energy
macEnergy8bit(int nm)
{
    return scaleEnergy(ref65nm::macOp8bit, 65, nm);
}

Energy
aluEnergy16bit(int nm)
{
    return scaleEnergy(ref65nm::aluOp16bit, 65, nm);
}

Area
macArea8bit(int nm)
{
    return scaleArea(ref65nm::macArea8bit, 65, nm);
}

} // namespace camj
