/**
 * @file
 * Process-node registry: per-node electrical parameters used as
 * defaults across CamJ (supply voltages, relative dynamic energy and
 * area of digital logic, SRAM leakage density).
 *
 * The relative energy/area columns follow the classic CMOS scaling
 * tables of Stillmaker & Baas (Integration'17), which the paper uses
 * via DeepScaleTool; the SRAM leakage column encodes the well-known
 * leakage peak of planar high-speed nodes around 90-65 nm (the paper
 * cites Gielen & Dehaene, DATE'05, "65 nm: end of the road?") followed
 * by the HKMG/FinFET recovery. Values between table rows are
 * interpolated in log-log space.
 */

#ifndef CAMJ_TECH_PROCESS_NODE_H
#define CAMJ_TECH_PROCESS_NODE_H

#include <vector>

#include "common/units.h"

namespace camj
{

/** Electrical parameters of one process node. */
struct NodeParams
{
    /** Feature size in nanometers. */
    int nm = 65;
    /** Digital core supply [V]. */
    Voltage vdd = 1.0;
    /** Analog supply [V] (thick-oxide devices; higher than core). */
    Voltage vdda = 2.5;
    /** Dynamic energy per logic op relative to the 65 nm node. */
    double relEnergy = 1.0;
    /** Logic/SRAM area relative to the 65 nm node. */
    double relArea = 1.0;
    /** SRAM standby leakage power per bit cell [W/bit]. */
    Power sramLeakPerBit = 0.0;
};

/**
 * Look up (and interpolate) the parameters of a process node.
 *
 * @param nm Feature size in nanometers; must lie within [7, 250].
 * @throws ConfigError for nodes outside the supported range.
 */
NodeParams nodeParams(int nm);

/** All nodes with exact table entries, largest first. */
std::vector<int> tabulatedNodes();

} // namespace camj

#endif // CAMJ_TECH_PROCESS_NODE_H
