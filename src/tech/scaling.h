/**
 * @file
 * DeepScaleTool-style scaling of digital energy and area between
 * process nodes (Sec. 5 of the paper: "we use the synthesis result of
 * a 65 nm MAC unit design ... and scale it to other process nodes
 * based on classic CMOS scaling").
 */

#ifndef CAMJ_TECH_SCALING_H
#define CAMJ_TECH_SCALING_H

#include "common/units.h"

namespace camj
{

/**
 * Scale a dynamic energy measured at node @p from_nm to node @p to_nm.
 *
 * @param energy Energy at the source node [J].
 * @return Equivalent energy at the target node [J].
 */
Energy scaleEnergy(Energy energy, int from_nm, int to_nm);

/** Scale a silicon area between nodes. */
Area scaleArea(Area area, int from_nm, int to_nm);

/** Ratio of dynamic energy at @p to_nm over @p from_nm. */
double energyScaleFactor(int from_nm, int to_nm);

/** Ratio of area at @p to_nm over @p from_nm. */
double areaScaleFactor(int from_nm, int to_nm);

/**
 * Reference per-op energies at 65 nm, used as scaling anchors for the
 * digital compute units in the validation and use-case configurations.
 */
namespace ref65nm
{

/** 8-bit multiply-accumulate, registered, synthesized at 65 nm [J]. */
constexpr Energy macOp8bit = 0.3e-12;

/** 16-bit ALU op (add/compare/shift with operand registers) [J]. */
constexpr Energy aluOp16bit = 0.9e-12;

/** Area of the 8-bit MAC PE including pipeline registers [m^2]. */
constexpr Area macArea8bit = 2600e-12;

} // namespace ref65nm

/** Per-op energy of an 8-bit MAC at an arbitrary node [J]. */
Energy macEnergy8bit(int nm);

/** Per-op energy of a 16-bit ALU operation at an arbitrary node [J]. */
Energy aluEnergy16bit(int nm);

/** Area of an 8-bit MAC PE at an arbitrary node [m^2]. */
Area macArea8bit(int nm);

} // namespace camj

#endif // CAMJ_TECH_SCALING_H
