/**
 * @file
 * The Design: CamJ's top-level object. It owns the three decoupled
 * descriptions of Sec. 3.3 — the algorithm DAG (SwGraph), the
 * hardware (an ordered analog chain plus a digital memory/compute
 * pipeline and communication interfaces), and the Mapping between
 * them — and runs the full Sec. 4 methodology in simulate():
 *
 *   pre-simulation checks -> cycle-level digital simulation ->
 *   delay estimation -> analog / digital / communication energy
 *   models -> EnergyReport.
 */

#ifndef CAMJ_CORE_DESIGN_H
#define CAMJ_CORE_DESIGN_H

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "analog/afa.h"
#include "comm/interface.h"
#include "core/mapping.h"
#include "core/report.h"
#include "digital/dcompute.h"
#include "digital/dmemory.h"
#include "sw/graph.h"

namespace camj
{

struct CycleSimStats;

/** Role of an analog array, for energy-category accounting. */
enum class AnalogRole
{
    /** Pixel array: part of SEN. */
    Sensing,
    /** ADC array: part of SEN ("everything up to and including
     *  ADCs"). */
    Adc,
    /** Analog processing element: COMP-A. */
    AnalogCompute,
    /** Analog memory: MEM-A. */
    AnalogMemory,
};

/** Top-level design parameters. */
struct DesignParams
{
    std::string name;
    /** Target frame rate [fps]; the prescribed rate of Sec. 4.1. */
    double fps = 30.0;
    /** Digital clock for the cycle-level simulation [Hz]. */
    Frequency digitalClock = 50e6;
};

/** A computational-CIS design under construction. */
class Design
{
  public:
    /** @throws ConfigError on invalid parameters. */
    explicit Design(DesignParams params);

    const std::string &name() const { return params_.name; }
    double fps() const { return params_.fps; }

    /** The algorithm DAG (camj_sw_config). */
    SwGraph &sw() { return sw_; }
    const SwGraph &sw() const { return sw_; }

    /** The algorithm-to-hardware mapping (camj_mapping). */
    Mapping &mapping() { return mapping_; }
    const Mapping &mapping() const { return mapping_; }

    // ----- analog hardware (insertion order = pipeline order) -----

    /** Append an analog array to the chain. @throws ConfigError on a
     *  duplicate name. */
    void addAnalogArray(AnalogArray array, AnalogRole role);

    // ----- digital hardware -----

    /** Register a digital memory. @throws ConfigError on duplicates. */
    void addMemory(DigitalMemory mem);

    /** Register a pipelined accelerator. */
    void addComputeUnit(ComputeUnit unit);

    /** Register a systolic array. */
    void addSystolicArray(SystolicArray array);

    /** Route the ADC (last analog array) output into a memory. */
    void setAdcOutput(const std::string &mem_name);

    /** Wire a memory as the next input port of a unit (port order =
     *  call order). */
    void connectMemoryToUnit(const std::string &mem_name,
                             const std::string &unit_name);

    /** Wire a unit's output into a memory (multiple allowed). */
    void connectUnitToMemory(const std::string &unit_name,
                             const std::string &mem_name);

    // ----- communication -----

    /** Configure the MIPI CSI-2 interface. */
    void setMipi(CommInterface iface);

    /** Configure the uTSV interface for stacked designs. */
    void setTsv(CommInterface iface);

    /**
     * Override the data volume of the pipeline's final output (e.g.
     * ROI encoding shrinks the transmitted image below the produced
     * element count). Defaults to the last stage's output bytes.
     */
    void setPipelineOutputBytes(int64_t bytes);

    /**
     * Run all checks and the energy estimation for one frame — every
     * stage of the evaluation pipeline (core/pipeline.h) in order.
     *
     * @param sim_stats When non-null, receives the cycle-sim
     *        execution diagnostics of the run (how the digital
     *        simulation executed, not what it computed).
     * @throws ConfigError on any failed pre-simulation check, a
     *         pipeline stall, or a missed FPS target.
     */
    EnergyReport simulate(CycleSimStats *sim_stats = nullptr) const;

    // ----- incremental patch points -----
    //
    // The IncrementalEvaluator (explore/incremental.h) rebinds these
    // scalar parameters on a cached Design instead of re-materializing
    // the whole hardware description; each setter validates like the
    // constructor does.

    /** @throws ConfigError on an empty name. */
    void setName(std::string name);

    /** @throws ConfigError unless positive. */
    void setFps(double fps);

    /** @throws ConfigError unless positive. */
    void setDigitalClock(Frequency clock);

  private:
    friend class EvalPipeline;
    struct AnalogEntry
    {
        AnalogArray array;
        AnalogRole role;
    };

    struct UnitEntry
    {
        std::variant<ComputeUnit, SystolicArray> unit;
        std::vector<int> inputMems;
        std::vector<int> outputMems;

        const std::string &name() const;
        Layer layer() const;
        Area area() const;
    };

    DesignParams params_;
    SwGraph sw_;
    Mapping mapping_;
    std::vector<AnalogEntry> analog_;
    std::vector<DigitalMemory> mems_;
    std::vector<UnitEntry> units_;
    int adcOutputMem_ = -1;
    std::optional<CommInterface> mipi_;
    std::optional<CommInterface> tsv_;
    int64_t outputBytesOverride_ = -1;

    int findMemory(const std::string &name, const char *who) const;
    int findUnit(const std::string &name, const char *who) const;
    int findAnalog(const std::string &name) const;
    void checkUniqueHwName(const std::string &name) const;
};

} // namespace camj

#endif // CAMJ_CORE_DESIGN_H
