#include "core/mapping.h"

#include "common/logging.h"

namespace camj
{

void
Mapping::map(const std::string &stage, const std::string &hw_unit)
{
    if (stage.empty() || hw_unit.empty())
        fatal("Mapping: empty stage or hardware name");
    if (stageToHw_.count(stage))
        fatal("Mapping: stage '%s' already mapped to '%s'",
              stage.c_str(), stageToHw_.at(stage).c_str());
    stageToHw_[stage] = hw_unit;
    order_.push_back(stage);
}

bool
Mapping::isMapped(const std::string &stage) const
{
    return stageToHw_.count(stage) > 0;
}

const std::string &
Mapping::hwUnitOf(const std::string &stage) const
{
    auto it = stageToHw_.find(stage);
    if (it == stageToHw_.end())
        fatal("Mapping: stage '%s' is not mapped", stage.c_str());
    return it->second;
}

std::vector<std::string>
Mapping::stagesOn(const std::string &hw_unit) const
{
    std::vector<std::string> result;
    for (const auto &stage : order_) {
        if (stageToHw_.at(stage) == hw_unit)
            result.push_back(stage);
    }
    return result;
}

} // namespace camj
