#include "core/design.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/area.h"
#include "core/checks.h"
#include "core/delay.h"
#include "digital/cyclesim.h"

namespace camj
{

namespace
{

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Elements at elem_bits converted to whole memory words. */
int64_t
elemsToWords(int64_t elems, int elem_bits, int word_bits)
{
    return ceilDiv(elems * elem_bits, word_bits);
}

/** Elements at elem_bits converted to whole bytes. */
int64_t
elemsToBytes(int64_t elems, int elem_bits)
{
    return ceilDiv(elems * elem_bits, 8);
}

} // namespace

const std::string &
Design::UnitEntry::name() const
{
    return std::visit([](const auto &u) -> const std::string & {
        return u.name();
    }, unit);
}

Layer
Design::UnitEntry::layer() const
{
    return std::visit([](const auto &u) { return u.layer(); }, unit);
}

Area
Design::UnitEntry::area() const
{
    return std::visit([](const auto &u) { return u.area(); }, unit);
}

Design::Design(DesignParams params)
    : params_(std::move(params))
{
    if (params_.name.empty())
        fatal("Design: empty name");
    if (params_.fps <= 0.0)
        fatal("Design %s: fps must be positive", params_.name.c_str());
    if (params_.digitalClock <= 0.0)
        fatal("Design %s: digital clock must be positive",
              params_.name.c_str());
}

void
Design::checkUniqueHwName(const std::string &name) const
{
    for (const auto &a : analog_) {
        if (a.array.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
    for (const auto &m : mems_) {
        if (m.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
    for (const auto &u : units_) {
        if (u.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
}

void
Design::addAnalogArray(AnalogArray array, AnalogRole role)
{
    checkUniqueHwName(array.name());
    analog_.push_back({std::move(array), role});
}

void
Design::addMemory(DigitalMemory mem)
{
    checkUniqueHwName(mem.name());
    mems_.push_back(std::move(mem));
}

void
Design::addComputeUnit(ComputeUnit unit)
{
    checkUniqueHwName(unit.name());
    UnitEntry e{std::move(unit), {}, {}};
    units_.push_back(std::move(e));
}

void
Design::addSystolicArray(SystolicArray array)
{
    checkUniqueHwName(array.name());
    UnitEntry e{std::move(array), {}, {}};
    units_.push_back(std::move(e));
}

namespace
{

/** "'a', 'b', 'c'" for not-found diagnostics. */
template <typename Range, typename NameFn>
std::string
registeredNames(const Range &range, NameFn name)
{
    std::string out;
    for (const auto &item : range) {
        if (!out.empty())
            out += ", ";
        out += "'" + name(item) + "'";
    }
    return out.empty() ? "<none>" : out;
}

} // namespace

int
Design::findMemory(const std::string &name, const char *who) const
{
    for (size_t i = 0; i < mems_.size(); ++i) {
        if (mems_[i].name() == name)
            return static_cast<int>(i);
    }
    fatal("Design %s: %s: no memory named '%s' (registered memories: "
          "%s)", params_.name.c_str(), who, name.c_str(),
          registeredNames(mems_, [](const DigitalMemory &m) {
              return m.name();
          }).c_str());
}

int
Design::findUnit(const std::string &name, const char *who) const
{
    for (size_t i = 0; i < units_.size(); ++i) {
        if (units_[i].name() == name)
            return static_cast<int>(i);
    }
    fatal("Design %s: %s: no compute unit named '%s' (registered "
          "units: %s)", params_.name.c_str(), who, name.c_str(),
          registeredNames(units_, [](const UnitEntry &u) {
              return u.name();
          }).c_str());
}

int
Design::findAnalog(const std::string &name) const
{
    for (size_t i = 0; i < analog_.size(); ++i) {
        if (analog_[i].array.name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
Design::setAdcOutput(const std::string &mem_name)
{
    adcOutputMem_ = findMemory(mem_name, "setAdcOutput");
}

void
Design::connectMemoryToUnit(const std::string &mem_name,
                            const std::string &unit_name)
{
    int m = findMemory(mem_name, "connectMemoryToUnit");
    int u = findUnit(unit_name, "connectMemoryToUnit");
    units_[static_cast<size_t>(u)].inputMems.push_back(m);
}

void
Design::connectUnitToMemory(const std::string &unit_name,
                            const std::string &mem_name)
{
    int u = findUnit(unit_name, "connectUnitToMemory");
    int m = findMemory(mem_name, "connectUnitToMemory");
    units_[static_cast<size_t>(u)].outputMems.push_back(m);
}

void
Design::setMipi(CommInterface iface)
{
    if (iface.kind() != CommKind::MipiCsi2)
        fatal("Design %s: setMipi expects a MIPI interface",
              params_.name.c_str());
    mipi_ = std::move(iface);
}

void
Design::setTsv(CommInterface iface)
{
    if (iface.kind() != CommKind::MicroTsv)
        fatal("Design %s: setTsv expects a uTSV interface",
              params_.name.c_str());
    tsv_ = std::move(iface);
}

void
Design::setPipelineOutputBytes(int64_t bytes)
{
    if (bytes < 0)
        fatal("Design %s: negative pipeline output bytes",
              params_.name.c_str());
    outputBytesOverride_ = bytes;
}

EnergyReport
Design::simulate() const
{
    // ------------------------------------------------------------------
    // 0. DAG well-formedness and mapping completeness.
    // ------------------------------------------------------------------
    sw_.validate();
    if (analog_.empty())
        fatal("Design %s: no analog arrays (a CIS starts with a pixel "
              "array)", params_.name.c_str());

    const std::vector<StageId> topo = sw_.topoOrder();
    std::vector<int> topo_pos(static_cast<size_t>(sw_.size()), 0);
    for (size_t i = 0; i < topo.size(); ++i)
        topo_pos[static_cast<size_t>(topo[i])] = static_cast<int>(i);

    // Per-target mapped stage ids.
    std::vector<std::vector<StageId>> analogStages(analog_.size());
    std::vector<std::vector<StageId>> unitStages(units_.size());
    std::vector<bool> memPrefilled(mems_.size(), false);

    for (StageId id = 0; id < sw_.size(); ++id) {
        const Stage &s = sw_.stage(id);
        if (!mapping_.isMapped(s.name()))
            fatal("Design %s: stage '%s' is not mapped to hardware",
                  params_.name.c_str(), s.name().c_str());
        const std::string &hw = mapping_.hwUnitOf(s.name());

        int ai = findAnalog(hw);
        if (ai >= 0) {
            analogStages[static_cast<size_t>(ai)].push_back(id);
            continue;
        }
        bool is_mem = false;
        for (size_t m = 0; m < mems_.size(); ++m) {
            if (mems_[m].name() == hw) {
                if (s.op() != StageOp::Input)
                    fatal("Design %s: only Input stages may map onto a "
                          "memory ('%s' -> '%s')", params_.name.c_str(),
                          s.name().c_str(), hw.c_str());
                // Residency of a retained frame: reads always succeed.
                memPrefilled[m] = true;
                is_mem = true;
                break;
            }
        }
        if (is_mem)
            continue;
        int ui = findUnit(hw, "mapping");
        unitStages[static_cast<size_t>(ui)].push_back(id);
    }

    auto by_topo = [&](StageId a, StageId b) {
        return topo_pos[static_cast<size_t>(a)] <
               topo_pos[static_cast<size_t>(b)];
    };
    for (auto &v : analogStages)
        std::sort(v.begin(), v.end(), by_topo);
    for (auto &v : unitStages)
        std::sort(v.begin(), v.end(), by_topo);

    // ------------------------------------------------------------------
    // 1. Analog chain: per-array ops via the dataflow-volume rule.
    // ------------------------------------------------------------------
    std::vector<int64_t> analogOps(analog_.size(), 0);
    int64_t volume = 0;
    int volumeBits = 8;
    for (size_t i = 0; i < analog_.size(); ++i) {
        const auto &mapped = analogStages[i];
        if (!mapped.empty()) {
            const Stage &last = sw_.stage(mapped.back());
            // Eq. 3 numerator: a compute array performs one component
            // access per primitive operation (e.g. per MAC of a
            // convolution); sensing/memory/ADC arrays perform one
            // access per produced sample (multi-input primitives like
            // charge binning live inside the component via spatial
            // cell counts).
            if (analog_[i].role == AnalogRole::AnalogCompute)
                analogOps[i] = last.opsPerFrame();
            else
                analogOps[i] = last.outputsPerFrame();
            volume = last.outputsPerFrame();
            volumeBits = last.bitDepth();
        } else {
            if (volume == 0)
                fatal("Design %s: analog array '%s' precedes any mapped "
                      "stage; map the Input stage to the pixel array",
                      params_.name.c_str(),
                      analog_[i].array.name().c_str());
            analogOps[i] = volume; // pass-through (e.g. ADC)
        }
    }

    std::vector<const AnalogArray *> chain;
    chain.reserve(analog_.size());
    for (const auto &e : analog_)
        chain.push_back(&e.array);
    checkAnalogDomains(chain);
    checkAnalogThroughput(chain);
    checkAdcBoundary(chain);

    // ------------------------------------------------------------------
    // 2. Digital pipeline analytics: fires, access counts, volumes.
    // ------------------------------------------------------------------
    struct UnitStats
    {
        int64_t fires = 0;
        Energy energy = 0.0;
        int latency = 1;
        // Per input port, in elements.
        std::vector<int64_t> portReadElems;
        int64_t writeElems = 0;
        int elemBits = 8;
    };
    std::vector<UnitStats> ustats(units_.size());
    std::vector<int64_t> memReadWords(mems_.size(), 0);
    std::vector<int64_t> memWriteWords(mems_.size(), 0);
    // Element-granularity counts for the cycle simulation.
    std::vector<int64_t> memWriteElems(mems_.size(), 0);

    int64_t mipiBytes = 0, tsvBytes = 0;
    auto cross = [&](Layer from, Layer to, int64_t bytes) {
        if (from == to)
            return;
        if (from == Layer::OffChip || to == Layer::OffChip)
            mipiBytes += bytes;
        else
            tsvBytes += bytes;
    };

    for (size_t u = 0; u < units_.size(); ++u) {
        const UnitEntry &ue = units_[u];
        UnitStats &st = ustats[u];
        st.portReadElems.assign(ue.inputMems.size(), 0);

        if (unitStages[u].empty()) {
            warn("Design %s: compute unit '%s' has no mapped stages",
                 params_.name.c_str(), ue.name().c_str());
            continue;
        }
        if (ue.inputMems.empty())
            fatal("Design %s: unit '%s' has no input memory",
                  params_.name.c_str(), ue.name().c_str());

        if (std::holds_alternative<SystolicArray>(ue.unit)) {
            const auto &sa = std::get<SystolicArray>(ue.unit);
            if (ue.inputMems.size() != 1)
                fatal("Design %s: systolic array '%s' needs exactly one "
                      "input buffer", params_.name.c_str(),
                      ue.name().c_str());
            for (StageId id : unitStages[u]) {
                const Stage &s = sw_.stage(id);
                SystolicMapping m = sa.mapStage(s);
                st.fires += m.cycles;
                st.energy += m.energy;
                // Weight-stationary traffic: each activation fetch
                // feeds `rows` PEs, each weight fetch feeds `cols`
                // streaming pixels.
                st.portReadElems[0] += m.macs / sa.rows() +
                                       m.macs / sa.cols();
                st.writeElems += s.outputsPerFrame();
                st.elemBits = s.bitDepth();
            }
            st.latency = sa.rows() + sa.cols();
        } else {
            const auto &cu = std::get<ComputeUnit>(ue.unit);
            for (StageId id : unitStages[u]) {
                const Stage &s = sw_.stage(id);
                int64_t fires = cu.cyclesForStage(s.outputsPerFrame(),
                                                  s.opsPerFrame());
                st.fires += fires;
                for (size_t p = 0; p < ue.inputMems.size(); ++p) {
                    st.portReadElems[p] +=
                        fires * cu.inputPixelsPerCycle().count();
                }
                st.writeElems +=
                    fires * cu.outputPixelsPerCycle().count();
                st.elemBits = s.bitDepth();
            }
            st.energy = cu.energyForCycles(st.fires);
            st.latency = cu.numStages();
        }

        for (size_t p = 0; p < ue.inputMems.size(); ++p) {
            const size_t m = static_cast<size_t>(ue.inputMems[p]);
            memReadWords[m] += elemsToWords(st.portReadElems[p],
                                            st.elemBits,
                                            mems_[m].wordBits());
            cross(mems_[m].layer(), ue.layer(),
                  elemsToBytes(st.portReadElems[p], st.elemBits));
        }
        for (int mi : ue.outputMems) {
            const size_t m = static_cast<size_t>(mi);
            memWriteWords[m] += elemsToWords(st.writeElems, st.elemBits,
                                             mems_[m].wordBits());
            memWriteElems[m] += st.writeElems;
            cross(ue.layer(), mems_[m].layer(),
                  elemsToBytes(st.writeElems, st.elemBits));
        }
    }

    // ADC output into the digital pipeline.
    if (!units_.empty() && adcOutputMem_ < 0)
        fatal("Design %s: digital units exist but setAdcOutput() was "
              "not called", params_.name.c_str());
    if (adcOutputMem_ >= 0) {
        const size_t m = static_cast<size_t>(adcOutputMem_);
        memWriteWords[m] += elemsToWords(volume, volumeBits,
                                         mems_[m].wordBits());
        memWriteElems[m] += volume;
        cross(analog_.back().array.layer(), mems_[m].layer(),
              elemsToBytes(volume, volumeBits));
    }

    // ------------------------------------------------------------------
    // 3. Cycle-level simulation: digital latency, then stall check.
    // ------------------------------------------------------------------
    Time digital_latency = 0.0;

    auto build_sim = [&](double source_rate_elems) {
        CycleSim sim;
        for (size_t m = 0; m < mems_.size(); ++m) {
            SimMemory sm;
            sm.name = mems_[m].name();
            // Track occupancy in elements of the data flowing through.
            int elem_bits = 8;
            for (size_t u = 0; u < units_.size(); ++u) {
                for (int mi : units_[u].outputMems) {
                    if (mi == static_cast<int>(m))
                        elem_bits = ustats[u].elemBits;
                }
            }
            if (adcOutputMem_ == static_cast<int>(m))
                elem_bits = volumeBits;
            sm.capacityWords = std::max<int64_t>(
                1, mems_[m].capacityWords() * mems_[m].wordBits() /
                       elem_bits);
            sm.readPorts = mems_[m].readPorts();
            sm.writePorts = mems_[m].writePorts();
            sm.prefilled = memPrefilled[m];
            sim.addMemory(sm);
        }
        if (adcOutputMem_ >= 0 && volume > 0) {
            SimSource src;
            src.name = "adc-source";
            src.totalWords = volume;
            src.wordsPerCycle = source_rate_elems;
            src.memIdx = adcOutputMem_;
            sim.addSource(src);
        }
        for (size_t u = 0; u < units_.size(); ++u) {
            if (unitStages[u].empty() || ustats[u].fires == 0)
                continue;
            const UnitEntry &ue = units_[u];
            SimUnit su;
            su.name = ue.name();
            for (size_t p = 0; p < ue.inputMems.size(); ++p) {
                SimPort port;
                port.memIdx = ue.inputMems[p];
                port.readWords = std::max<int64_t>(
                    1, ustats[u].portReadElems[p] / ustats[u].fires);
                port.needWords = port.readWords;
                // Flow conservation: retire what the producer put in.
                const size_t m = static_cast<size_t>(port.memIdx);
                port.retireWords =
                    static_cast<double>(memWriteElems[m]) /
                    static_cast<double>(ustats[u].fires);
                port.expectedWords =
                    static_cast<double>(memWriteElems[m]);
                su.inputs.push_back(port);
            }
            su.outMemIdx = ue.outputMems.empty() ? -1 : ue.outputMems[0];
            su.outWords = std::max<int64_t>(
                1, ustats[u].writeElems / ustats[u].fires);
            su.totalFires = ustats[u].fires;
            su.latency = ustats[u].latency;
            sim.addUnit(su);
        }
        return sim;
    };

    bool have_digital = false;
    for (size_t u = 0; u < units_.size(); ++u) {
        if (!unitStages[u].empty() && ustats[u].fires > 0)
            have_digital = true;
    }

    if (have_digital) {
        // Pass A: latency with a source matched to the first
        // consumer's appetite (the digital side is never input-bound).
        double fast_rate = 1.0;
        for (size_t u = 0; u < units_.size(); ++u) {
            for (size_t p = 0; p < units_[u].inputMems.size(); ++p) {
                if (units_[u].inputMems[p] == adcOutputMem_ &&
                    ustats[u].fires > 0) {
                    fast_rate = std::max(
                        fast_rate,
                        static_cast<double>(ustats[u].portReadElems[p]) /
                            static_cast<double>(ustats[u].fires));
                }
            }
        }
        CycleSim simA = build_sim(fast_rate);
        CycleSimResult ra = simA.run();
        digital_latency = static_cast<double>(ra.cycles) /
                          params_.digitalClock;
    }

    DelayEstimate delay = estimateDelays(
        1.0 / params_.fps, digital_latency,
        static_cast<int>(analog_.size()));

    if (have_digital && volume > 0) {
        // Pass B: stall check at the true ADC production rate.
        double adc_rate = static_cast<double>(volume) /
                          (delay.analogUnitTime * params_.digitalClock);
        CycleSim simB = build_sim(adc_rate);
        CycleSimResult rb = simB.run();
        if (rb.sourceBlocked) {
            fatal("Design %s: pipeline stall — the ADC output memory "
                  "fills up at the required frame rate (%lld blocked "
                  "cycles); enlarge the buffer or speed up the "
                  "consumer", params_.name.c_str(),
                  static_cast<long long>(rb.sourceBlockedCycles));
        }
    }

    // ------------------------------------------------------------------
    // 4. Energy assembly.
    // ------------------------------------------------------------------
    EnergyReport rep;
    rep.designName = params_.name;
    rep.fps = params_.fps;
    rep.frameTime = delay.frameTime;
    rep.digitalLatency = delay.digitalLatency;
    rep.analogUnitTime = delay.analogUnitTime;
    rep.numAnalogSlots = delay.numSlots;

    AreaSummary areas;

    for (size_t i = 0; i < analog_.size(); ++i) {
        const AnalogEntry &e = analog_[i];
        AnalogArrayEnergy ae = e.array.energyPerFrame(
            analogOps[i], delay.analogUnitTime, delay.frameTime);
        EnergyCategory cat = EnergyCategory::Sen;
        if (e.role == AnalogRole::AnalogCompute)
            cat = EnergyCategory::CompA;
        else if (e.role == AnalogRole::AnalogMemory)
            cat = EnergyCategory::MemA;
        rep.units.push_back({e.array.name(), cat, e.array.layer(),
                             ae.total});
        areas.add(e.array.layer(), e.array.area());
    }

    for (size_t u = 0; u < units_.size(); ++u) {
        const UnitEntry &ue = units_[u];
        rep.units.push_back({ue.name(), EnergyCategory::CompD,
                             ue.layer(), ustats[u].energy});
        areas.add(ue.layer(), ue.area());
    }

    for (size_t m = 0; m < mems_.size(); ++m) {
        MemoryEnergy me = mems_[m].energyPerFrame(
            memReadWords[m], memWriteWords[m], delay.frameTime);
        rep.units.push_back({mems_[m].name(), EnergyCategory::MemD,
                             mems_[m].layer(), me.total});
        areas.add(mems_[m].layer(), mems_[m].area());
    }

    // Final pipeline output leaves toward the host. Use the
    // topologically-last processing stage; resident-data Inputs (a
    // frame buffer's previous frame, region state) are not outputs
    // even when they sort last.
    {
        StageId last_stage = topo.back();
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            if (sw_.stage(*it).op() != StageOp::Input) {
                last_stage = *it;
                break;
            }
        }
        const Stage &s = sw_.stage(last_stage);
        int64_t out_bytes = outputBytesOverride_ >= 0
                                ? outputBytesOverride_
                                : s.outputBytesPerFrame();
        const std::string &hw = mapping_.hwUnitOf(s.name());
        Layer out_layer;
        int ai = findAnalog(hw);
        if (ai >= 0) {
            out_layer = analog_[static_cast<size_t>(ai)].array.layer();
        } else {
            bool found = false;
            for (const auto &mem : mems_) {
                if (mem.name() == hw) {
                    out_layer = mem.layer();
                    found = true;
                    break;
                }
            }
            if (!found) {
                out_layer = units_[static_cast<size_t>(
                                       findUnit(hw, "output"))]
                                .layer();
            }
        }
        if (out_layer != Layer::OffChip)
            mipiBytes += out_bytes;
    }

    if (mipiBytes > 0) {
        if (!mipi_)
            fatal("Design %s: %lld B cross the package boundary but no "
                  "MIPI interface is configured", params_.name.c_str(),
                  static_cast<long long>(mipiBytes));
        rep.units.push_back({mipi_->name(), EnergyCategory::Mipi,
                             Layer::Sensor,
                             mipi_->energyForBytes(mipiBytes)});
    }
    if (tsvBytes > 0) {
        if (!tsv_)
            fatal("Design %s: %lld B cross between stacked layers but "
                  "no uTSV interface is configured",
                  params_.name.c_str(),
                  static_cast<long long>(tsvBytes));
        rep.units.push_back({tsv_->name(), EnergyCategory::Tsv,
                             Layer::Sensor,
                             tsv_->energyForBytes(tsvBytes)});
    }
    rep.mipiBytes = mipiBytes;
    rep.tsvBytes = tsvBytes;

    rep.sensorLayerArea = areas.sensorLayer;
    rep.computeLayerArea = areas.computeLayer;
    rep.footprint = areas.footprint();
    return rep;
}

} // namespace camj
