#include "core/design.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/pipeline.h"

namespace camj
{

const std::string &
Design::UnitEntry::name() const
{
    return std::visit([](const auto &u) -> const std::string & {
        return u.name();
    }, unit);
}

Layer
Design::UnitEntry::layer() const
{
    return std::visit([](const auto &u) { return u.layer(); }, unit);
}

Area
Design::UnitEntry::area() const
{
    return std::visit([](const auto &u) { return u.area(); }, unit);
}

Design::Design(DesignParams params)
    : params_(std::move(params))
{
    if (params_.name.empty())
        fatal("Design: empty name");
    if (params_.fps <= 0.0)
        fatal("Design %s: fps must be positive", params_.name.c_str());
    if (params_.digitalClock <= 0.0)
        fatal("Design %s: digital clock must be positive",
              params_.name.c_str());
}

void
Design::checkUniqueHwName(const std::string &name) const
{
    for (const auto &a : analog_) {
        if (a.array.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
    for (const auto &m : mems_) {
        if (m.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
    for (const auto &u : units_) {
        if (u.name() == name)
            fatal("Design %s: duplicate hardware name '%s'",
                  params_.name.c_str(), name.c_str());
    }
}

void
Design::addAnalogArray(AnalogArray array, AnalogRole role)
{
    checkUniqueHwName(array.name());
    analog_.push_back({std::move(array), role});
}

void
Design::addMemory(DigitalMemory mem)
{
    checkUniqueHwName(mem.name());
    mems_.push_back(std::move(mem));
}

void
Design::addComputeUnit(ComputeUnit unit)
{
    checkUniqueHwName(unit.name());
    UnitEntry e{std::move(unit), {}, {}};
    units_.push_back(std::move(e));
}

void
Design::addSystolicArray(SystolicArray array)
{
    checkUniqueHwName(array.name());
    UnitEntry e{std::move(array), {}, {}};
    units_.push_back(std::move(e));
}

namespace
{

/** "'a', 'b', 'c'" for not-found diagnostics. */
template <typename Range, typename NameFn>
std::string
registeredNames(const Range &range, NameFn name)
{
    std::string out;
    for (const auto &item : range) {
        if (!out.empty())
            out += ", ";
        out += "'" + name(item) + "'";
    }
    return out.empty() ? "<none>" : out;
}

} // namespace

int
Design::findMemory(const std::string &name, const char *who) const
{
    for (size_t i = 0; i < mems_.size(); ++i) {
        if (mems_[i].name() == name)
            return static_cast<int>(i);
    }
    fatal("Design %s: %s: no memory named '%s' (registered memories: "
          "%s)", params_.name.c_str(), who, name.c_str(),
          registeredNames(mems_, [](const DigitalMemory &m) {
              return m.name();
          }).c_str());
}

int
Design::findUnit(const std::string &name, const char *who) const
{
    for (size_t i = 0; i < units_.size(); ++i) {
        if (units_[i].name() == name)
            return static_cast<int>(i);
    }
    fatal("Design %s: %s: no compute unit named '%s' (registered "
          "units: %s)", params_.name.c_str(), who, name.c_str(),
          registeredNames(units_, [](const UnitEntry &u) {
              return u.name();
          }).c_str());
}

int
Design::findAnalog(const std::string &name) const
{
    for (size_t i = 0; i < analog_.size(); ++i) {
        if (analog_[i].array.name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
Design::setAdcOutput(const std::string &mem_name)
{
    adcOutputMem_ = findMemory(mem_name, "setAdcOutput");
}

void
Design::connectMemoryToUnit(const std::string &mem_name,
                            const std::string &unit_name)
{
    int m = findMemory(mem_name, "connectMemoryToUnit");
    int u = findUnit(unit_name, "connectMemoryToUnit");
    units_[static_cast<size_t>(u)].inputMems.push_back(m);
}

void
Design::connectUnitToMemory(const std::string &unit_name,
                            const std::string &mem_name)
{
    int u = findUnit(unit_name, "connectUnitToMemory");
    int m = findMemory(mem_name, "connectUnitToMemory");
    units_[static_cast<size_t>(u)].outputMems.push_back(m);
}

void
Design::setMipi(CommInterface iface)
{
    if (iface.kind() != CommKind::MipiCsi2)
        fatal("Design %s: setMipi expects a MIPI interface",
              params_.name.c_str());
    mipi_ = std::move(iface);
}

void
Design::setTsv(CommInterface iface)
{
    if (iface.kind() != CommKind::MicroTsv)
        fatal("Design %s: setTsv expects a uTSV interface",
              params_.name.c_str());
    tsv_ = std::move(iface);
}

void
Design::setPipelineOutputBytes(int64_t bytes)
{
    if (bytes < 0)
        fatal("Design %s: negative pipeline output bytes",
              params_.name.c_str());
    outputBytesOverride_ = bytes;
}

EnergyReport
Design::simulate(CycleSimStats *sim_stats) const
{
    // The staged evaluation pipeline run end to end — see
    // core/pipeline.h for the stage decomposition the incremental
    // evaluator re-runs suffixes of.
    EvalPipeline pipeline;
    EnergyReport report = pipeline.runAll(*this);
    if (sim_stats != nullptr)
        *sim_stats = pipeline.simStats();
    return report;
}

void
Design::setName(std::string name)
{
    if (name.empty())
        fatal("Design: empty name");
    params_.name = std::move(name);
}

void
Design::setFps(double fps)
{
    if (fps <= 0.0)
        fatal("Design %s: fps must be positive", params_.name.c_str());
    params_.fps = fps;
}

void
Design::setDigitalClock(Frequency clock)
{
    if (clock <= 0.0)
        fatal("Design %s: digital clock must be positive",
              params_.name.c_str());
    params_.digitalClock = clock;
}

} // namespace camj
