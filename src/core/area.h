/**
 * @file
 * Conservative area/footprint model (Sec. 6.2). The paper
 * approximates analog area by the pixel array and digital area by
 * the SRAM macros; we aggregate whatever per-unit areas the
 * configuration supplies. The package footprint is the sum of layer
 * areas for a 2D design and the maximum layer area for a stacked
 * design (stacking shrinks the footprint, raising power density).
 */

#ifndef CAMJ_CORE_AREA_H
#define CAMJ_CORE_AREA_H

#include "common/layer.h"
#include "common/units.h"

namespace camj
{

/** Aggregated areas by layer. */
struct AreaSummary
{
    Area sensorLayer = 0.0;
    Area computeLayer = 0.0;
    Area dramLayer = 0.0;
    Area offChip = 0.0;

    /** Accumulate one unit's area on its layer. */
    void add(Layer layer, Area area);

    /**
     * Package footprint: sensor + on-sensor digital for a 2D design;
     * max(sensor layer, compute layer) for a stacked design.
     */
    Area footprint() const;

    /** True when any area was placed on a stacked layer. */
    bool
    stacked() const
    {
        return computeLayer > 0.0 || dramLayer > 0.0;
    }
};

} // namespace camj

#endif // CAMJ_CORE_AREA_H
