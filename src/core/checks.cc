#include "core/checks.h"

#include "common/logging.h"

namespace camj
{

void
checkAnalogDomains(const std::vector<const AnalogArray *> &chain)
{
    if (chain.empty())
        fatal("checkAnalogDomains: empty analog chain");
    for (const AnalogArray *a : chain) {
        if (!a)
            panic("checkAnalogDomains: null array in chain");
    }

    for (size_t i = 0; i + 1 < chain.size(); ++i) {
        SignalDomain out = chain[i]->outputDomain();
        SignalDomain in = chain[i + 1]->inputDomain();
        if (out != in) {
            fatal("analog chain: '%s' outputs %s but '%s' consumes "
                  "%s; insert a %s-to-%s conversion component",
                  chain[i]->name().c_str(), signalDomainName(out),
                  chain[i + 1]->name().c_str(), signalDomainName(in),
                  signalDomainName(out), signalDomainName(in));
        }
    }
}

void
checkAnalogThroughput(const std::vector<const AnalogArray *> &chain)
{
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
        const AnalogArray *prod = chain[i];
        const AnalogArray *cons = chain[i + 1];
        int64_t produced = prod->outputShape().count();
        int64_t consumed = cons->inputShape().count();
        if (produced == consumed)
            continue;
        if (cons->inputDomain() == SignalDomain::Voltage) {
            // Footnote 1: the consumer's input capacitance acts as an
            // inherent analog buffer.
            warn("analog chain: throughput mismatch %s ('%s') -> %s "
                 "('%s') buffered by the consumer's inherent "
                 "capacitance",
                 prod->outputShape().str().c_str(),
                 prod->name().c_str(),
                 cons->inputShape().str().c_str(),
                 cons->name().c_str());
            continue;
        }
        fatal("analog chain: '%s' produces %s per step but '%s' "
              "consumes %s; insert an analog buffer between them",
              prod->name().c_str(), prod->outputShape().str().c_str(),
              cons->name().c_str(), cons->inputShape().str().c_str());
    }
}

void
checkAdcBoundary(const std::vector<const AnalogArray *> &chain)
{
    if (chain.empty())
        fatal("checkAdcBoundary: empty analog chain");
    const AnalogArray *last = chain.back();
    if (last->outputDomain() != SignalDomain::Digital) {
        fatal("analog chain: final array '%s' outputs %s; an ADC (or "
              "comparator) must sit between the analog and digital "
              "domains", last->name().c_str(),
              signalDomainName(last->outputDomain()));
    }
}

} // namespace camj
