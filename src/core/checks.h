/**
 * @file
 * Pre-simulation design checks (Sec. 3.2): functional viability of
 * the analog chain (signal-domain continuity, ADC at the digital
 * boundary) and throughput compatibility between producer/consumer
 * arrays. DAG well-formedness lives in SwGraph::validate(); stall
 * checking lives in the cycle simulator.
 */

#ifndef CAMJ_CORE_CHECKS_H
#define CAMJ_CORE_CHECKS_H

#include <vector>

#include "analog/afa.h"

namespace camj
{

/**
 * Check that the output domain of every array matches the input
 * domain of its successor.
 *
 * @param chain Analog arrays in pipeline order; must be non-empty.
 * @throws ConfigError naming the offending pair and the conversion
 *         component the designer must insert.
 */
void checkAnalogDomains(const std::vector<const AnalogArray *> &chain);

/**
 * Check producer/consumer throughput shapes. A mismatch requires an
 * analog buffer — except when the consumer's input is in the voltage
 * domain, whose inherent capacitance buffers naturally (the paper's
 * footnote 1); that case produces a warning only.
 *
 * @throws ConfigError on a hard mismatch.
 */
void checkAnalogThroughput(
    const std::vector<const AnalogArray *> &chain);

/**
 * Check that the chain ends in the digital domain (an ADC exists
 * between the analog and digital parts).
 *
 * @throws ConfigError if the final array's output is not digital.
 */
void checkAdcBoundary(const std::vector<const AnalogArray *> &chain);

} // namespace camj

#endif // CAMJ_CORE_CHECKS_H
