#include "core/delay.h"

#include "common/logging.h"

namespace camj
{

DelayEstimate
estimateDelays(Time frame_time, Time digital_latency,
               int num_analog_arrays)
{
    if (frame_time <= 0.0)
        fatal("estimateDelays: frame time must be positive");
    if (digital_latency < 0.0)
        fatal("estimateDelays: negative digital latency");
    if (num_analog_arrays < 1)
        fatal("estimateDelays: need at least one analog array");

    DelayEstimate d;
    d.frameTime = frame_time;
    d.digitalLatency = digital_latency;
    d.numSlots = num_analog_arrays + 1;

    Time analog_budget = frame_time - digital_latency;
    if (analog_budget <= 0.0) {
        fatal("estimateDelays: digital latency %s exceeds the frame "
              "time %s; the pipeline would stall — redesign the "
              "digital units or lower the FPS target",
              formatTime(digital_latency).c_str(),
              formatTime(frame_time).c_str());
    }
    d.analogUnitTime = analog_budget / static_cast<double>(d.numSlots);
    return d;
}

} // namespace camj
