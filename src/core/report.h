/**
 * @file
 * Energy report: the output of a CamJ simulation. Per-unit energies
 * with category tags matching the paper's figures (SEN, COMP-A,
 * MEM-A, COMP-D, MEM-D, MIPI, uTSV), delay-estimation results, data
 * volumes, and the power-density model of Sec. 6.2.
 */

#ifndef CAMJ_CORE_REPORT_H
#define CAMJ_CORE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/layer.h"
#include "common/units.h"

namespace camj
{

/** Energy category in the paper's breakdown figures. */
enum class EnergyCategory
{
    /** Everything up to and including the ADCs. */
    Sen,
    /** Analog computation (post-sensing, pre-ADC). */
    CompA,
    /** Analog memory. */
    MemA,
    /** Digital computation. */
    CompD,
    /** Digital memory. */
    MemD,
    /** MIPI CSI-2 transfers. */
    Mipi,
    /** uTSV transfers between stacked layers. */
    Tsv,
};

/** Human-readable category name as used in the paper's legends. */
const char *energyCategoryName(EnergyCategory cat);

/** All categories, in display order. */
const std::vector<EnergyCategory> &allEnergyCategories();

/** Per-hardware-unit energy entry. */
struct UnitEnergy
{
    std::string name;
    EnergyCategory category = EnergyCategory::Sen;
    Layer layer = Layer::Sensor;
    Energy energy = 0.0;
};

/** The full result of Design::simulate(). */
class EnergyReport
{
  public:
    EnergyReport() = default;

    /** Design name the report belongs to. */
    std::string designName;
    /** Target frame rate [fps]. */
    double fps = 0.0;

    /** Per-unit energy entries. */
    std::vector<UnitEnergy> units;

    // Delay estimation (Sec. 4.1).
    Time frameTime = 0.0;
    Time digitalLatency = 0.0;
    Time analogUnitTime = 0.0;
    int numAnalogSlots = 0;

    // Communication volumes (Eq. 17 inputs).
    int64_t mipiBytes = 0;
    int64_t tsvBytes = 0;

    // Footprint model (Sec. 6.2).
    Area sensorLayerArea = 0.0;
    Area computeLayerArea = 0.0;
    Area footprint = 0.0;

    /** Total energy per frame [J]. */
    Energy total() const;

    /** Energy of one category per frame [J]. */
    Energy category(EnergyCategory cat) const;

    /** Energy of a named unit. @throws ConfigError if absent. */
    Energy energyOf(const std::string &unit_name) const;

    /** True if a unit with this name exists in the report. */
    bool hasUnit(const std::string &unit_name) const;

    /** Average power of the sensor package (on-sensor layers plus
     *  MIPI transmit) [W]. */
    Power packagePower() const;

    /** Sec. 6.2 power density [W/m^2]: package power over footprint.
     *  @throws ConfigError if the footprint is zero. */
    double powerDensity() const;

    /** Energy per pixel [J/px] given the pixel count (validation
     *  figure-of-merit). */
    Energy energyPerPixel(int64_t pixels) const;

    /** Render as a human-readable table. */
    std::string pretty() const;

    /**
     * Render as CSV for plotting pipelines:
     * `unit,category,layer,energy_pJ` rows followed by one
     * `TOTAL,,,<pJ>` row.
     */
    std::string csv() const;
};

} // namespace camj

#endif // CAMJ_CORE_REPORT_H
