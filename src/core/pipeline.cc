#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/logging.h"
#include "core/area.h"
#include "core/checks.h"
#include "core/design.h"

namespace camj
{

namespace
{

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Elements at elem_bits converted to whole memory words. */
int64_t
elemsToWords(int64_t elems, int elem_bits, int word_bits)
{
    return ceilDiv(elems * elem_bits, word_bits);
}

/** Elements at elem_bits converted to whole bytes. */
int64_t
elemsToBytes(int64_t elems, int elem_bits)
{
    return ceilDiv(elems * elem_bits, 8);
}

} // namespace

const char *
evalStageName(EvalStage stage)
{
    switch (stage) {
      case EvalStage::Map:
        return "map";
      case EvalStage::Analog:
        return "analog";
      case EvalStage::Digital:
        return "digital";
      case EvalStage::CycleSim:
        return "cyclesim";
      case EvalStage::Timing:
        return "timing";
      case EvalStage::Energy:
        return "energy";
    }
    panic("evalStageName: unknown stage %d", static_cast<int>(stage));
}

// ------------------------------------------------------------------ Map

void
EvalPipeline::runMap(const Design &d)
{
    // DAG well-formedness and mapping completeness.
    d.sw_.validate();
    if (d.analog_.empty())
        fatal("Design %s: no analog arrays (a CIS starts with a pixel "
              "array)", d.params_.name.c_str());

    topo_ = d.sw_.topoOrder();
    topoPos_.assign(static_cast<size_t>(d.sw_.size()), 0);
    for (size_t i = 0; i < topo_.size(); ++i)
        topoPos_[static_cast<size_t>(topo_[i])] = static_cast<int>(i);

    // Per-target mapped stage ids.
    analogStages_.assign(d.analog_.size(), {});
    unitStages_.assign(d.units_.size(), {});
    memPrefilled_.assign(d.mems_.size(), false);

    for (StageId id = 0; id < d.sw_.size(); ++id) {
        const Stage &s = d.sw_.stage(id);
        if (!d.mapping_.isMapped(s.name()))
            fatal("Design %s: stage '%s' is not mapped to hardware",
                  d.params_.name.c_str(), s.name().c_str());
        const std::string &hw = d.mapping_.hwUnitOf(s.name());

        int ai = d.findAnalog(hw);
        if (ai >= 0) {
            analogStages_[static_cast<size_t>(ai)].push_back(id);
            continue;
        }
        bool is_mem = false;
        for (size_t m = 0; m < d.mems_.size(); ++m) {
            if (d.mems_[m].name() == hw) {
                if (s.op() != StageOp::Input)
                    fatal("Design %s: only Input stages may map onto a "
                          "memory ('%s' -> '%s')",
                          d.params_.name.c_str(), s.name().c_str(),
                          hw.c_str());
                // Residency of a retained frame: reads always succeed.
                memPrefilled_[m] = true;
                is_mem = true;
                break;
            }
        }
        if (is_mem)
            continue;
        int ui = d.findUnit(hw, "mapping");
        unitStages_[static_cast<size_t>(ui)].push_back(id);
    }

    auto by_topo = [&](StageId a, StageId b) {
        return topoPos_[static_cast<size_t>(a)] <
               topoPos_[static_cast<size_t>(b)];
    };
    for (auto &v : analogStages_)
        std::sort(v.begin(), v.end(), by_topo);
    for (auto &v : unitStages_)
        std::sort(v.begin(), v.end(), by_topo);
}

// --------------------------------------------------------------- Analog

void
EvalPipeline::runAnalog(const Design &d)
{
    // Analog chain: per-array ops via the dataflow-volume rule.
    analogOps_.assign(d.analog_.size(), 0);
    volume_ = 0;
    volumeBits_ = 8;
    for (size_t i = 0; i < d.analog_.size(); ++i) {
        const auto &mapped = analogStages_[i];
        if (!mapped.empty()) {
            const Stage &last = d.sw_.stage(mapped.back());
            // Eq. 3 numerator: a compute array performs one component
            // access per primitive operation (e.g. per MAC of a
            // convolution); sensing/memory/ADC arrays perform one
            // access per produced sample (multi-input primitives like
            // charge binning live inside the component via spatial
            // cell counts).
            if (d.analog_[i].role == AnalogRole::AnalogCompute)
                analogOps_[i] = last.opsPerFrame();
            else
                analogOps_[i] = last.outputsPerFrame();
            volume_ = last.outputsPerFrame();
            volumeBits_ = last.bitDepth();
        } else {
            if (volume_ == 0)
                fatal("Design %s: analog array '%s' precedes any mapped "
                      "stage; map the Input stage to the pixel array",
                      d.params_.name.c_str(),
                      d.analog_[i].array.name().c_str());
            analogOps_[i] = volume_; // pass-through (e.g. ADC)
        }
    }

    std::vector<const AnalogArray *> chain;
    chain.reserve(d.analog_.size());
    for (const auto &e : d.analog_)
        chain.push_back(&e.array);
    checkAnalogDomains(chain);
    checkAnalogThroughput(chain);
    checkAdcBoundary(chain);
}

// -------------------------------------------------------------- Digital

void
EvalPipeline::runDigital(const Design &d)
{
    // Digital pipeline analytics: fires, access counts, volumes.
    ustats_.assign(d.units_.size(), {});
    memReadWords_.assign(d.mems_.size(), 0);
    memWriteWords_.assign(d.mems_.size(), 0);
    // Element-granularity counts for the cycle simulation.
    memWriteElems_.assign(d.mems_.size(), 0);

    mipiBytes_ = 0;
    tsvBytes_ = 0;
    auto cross = [&](Layer from, Layer to, int64_t bytes) {
        if (from == to)
            return;
        if (from == Layer::OffChip || to == Layer::OffChip)
            mipiBytes_ += bytes;
        else
            tsvBytes_ += bytes;
    };

    for (size_t u = 0; u < d.units_.size(); ++u) {
        const Design::UnitEntry &ue = d.units_[u];
        UnitStats &st = ustats_[u];
        st.portReadElems.assign(ue.inputMems.size(), 0);

        if (unitStages_[u].empty()) {
            warn("Design %s: compute unit '%s' has no mapped stages",
                 d.params_.name.c_str(), ue.name().c_str());
            continue;
        }
        if (ue.inputMems.empty())
            fatal("Design %s: unit '%s' has no input memory",
                  d.params_.name.c_str(), ue.name().c_str());

        if (std::holds_alternative<SystolicArray>(ue.unit)) {
            const auto &sa = std::get<SystolicArray>(ue.unit);
            if (ue.inputMems.size() != 1)
                fatal("Design %s: systolic array '%s' needs exactly one "
                      "input buffer", d.params_.name.c_str(),
                      ue.name().c_str());
            for (StageId id : unitStages_[u]) {
                const Stage &s = d.sw_.stage(id);
                SystolicMapping m = sa.mapStage(s);
                st.fires += m.cycles;
                st.energy += m.energy;
                // Weight-stationary traffic: each activation fetch
                // feeds `rows` PEs, each weight fetch feeds `cols`
                // streaming pixels.
                st.portReadElems[0] += m.macs / sa.rows() +
                                       m.macs / sa.cols();
                st.writeElems += s.outputsPerFrame();
                st.elemBits = s.bitDepth();
            }
            st.latency = sa.rows() + sa.cols();
        } else {
            const auto &cu = std::get<ComputeUnit>(ue.unit);
            for (StageId id : unitStages_[u]) {
                const Stage &s = d.sw_.stage(id);
                int64_t fires = cu.cyclesForStage(s.outputsPerFrame(),
                                                  s.opsPerFrame());
                st.fires += fires;
                for (size_t p = 0; p < ue.inputMems.size(); ++p) {
                    st.portReadElems[p] +=
                        fires * cu.inputPixelsPerCycle().count();
                }
                st.writeElems +=
                    fires * cu.outputPixelsPerCycle().count();
                st.elemBits = s.bitDepth();
            }
            st.energy = cu.energyForCycles(st.fires);
            st.latency = cu.numStages();
        }

        for (size_t p = 0; p < ue.inputMems.size(); ++p) {
            const size_t m = static_cast<size_t>(ue.inputMems[p]);
            memReadWords_[m] += elemsToWords(st.portReadElems[p],
                                             st.elemBits,
                                             d.mems_[m].wordBits());
            cross(d.mems_[m].layer(), ue.layer(),
                  elemsToBytes(st.portReadElems[p], st.elemBits));
        }
        for (int mi : ue.outputMems) {
            const size_t m = static_cast<size_t>(mi);
            memWriteWords_[m] += elemsToWords(st.writeElems,
                                              st.elemBits,
                                              d.mems_[m].wordBits());
            memWriteElems_[m] += st.writeElems;
            cross(ue.layer(), d.mems_[m].layer(),
                  elemsToBytes(st.writeElems, st.elemBits));
        }
    }

    // ADC output into the digital pipeline.
    if (!d.units_.empty() && d.adcOutputMem_ < 0)
        fatal("Design %s: digital units exist but setAdcOutput() was "
              "not called", d.params_.name.c_str());
    if (d.adcOutputMem_ >= 0) {
        const size_t m = static_cast<size_t>(d.adcOutputMem_);
        memWriteWords_[m] += elemsToWords(volume_, volumeBits_,
                                          d.mems_[m].wordBits());
        memWriteElems_[m] += volume_;
        cross(d.analog_.back().array.layer(), d.mems_[m].layer(),
              elemsToBytes(volume_, volumeBits_));
    }

    haveDigital_ = false;
    for (size_t u = 0; u < d.units_.size(); ++u) {
        if (!unitStages_[u].empty() && ustats_[u].fires > 0)
            haveDigital_ = true;
    }
}

// ------------------------------------------------------------- CycleSim

CycleSim
EvalPipeline::buildSim(const Design &d, double source_rate_elems) const
{
    CycleSim sim;
    for (size_t m = 0; m < d.mems_.size(); ++m) {
        SimMemory sm;
        sm.name = d.mems_[m].name();
        // Track occupancy in elements of the data flowing through.
        int elem_bits = 8;
        for (size_t u = 0; u < d.units_.size(); ++u) {
            for (int mi : d.units_[u].outputMems) {
                if (mi == static_cast<int>(m))
                    elem_bits = ustats_[u].elemBits;
            }
        }
        if (d.adcOutputMem_ == static_cast<int>(m))
            elem_bits = volumeBits_;
        sm.capacityWords = std::max<int64_t>(
            1, d.mems_[m].capacityWords() * d.mems_[m].wordBits() /
                   elem_bits);
        sm.readPorts = d.mems_[m].readPorts();
        sm.writePorts = d.mems_[m].writePorts();
        sm.prefilled = memPrefilled_[m];
        sim.addMemory(sm);
    }
    if (d.adcOutputMem_ >= 0 && volume_ > 0) {
        SimSource src;
        src.name = "adc-source";
        src.totalWords = volume_;
        src.wordsPerCycle = source_rate_elems;
        src.memIdx = d.adcOutputMem_;
        sim.addSource(src);
    }
    for (size_t u = 0; u < d.units_.size(); ++u) {
        if (unitStages_[u].empty() || ustats_[u].fires == 0)
            continue;
        const Design::UnitEntry &ue = d.units_[u];
        SimUnit su;
        su.name = ue.name();
        for (size_t p = 0; p < ue.inputMems.size(); ++p) {
            SimPort port;
            port.memIdx = ue.inputMems[p];
            port.readWords = std::max<int64_t>(
                1, ustats_[u].portReadElems[p] / ustats_[u].fires);
            port.needWords = port.readWords;
            // Flow conservation: retire what the producer put in.
            const size_t m = static_cast<size_t>(port.memIdx);
            port.retireWords =
                static_cast<double>(memWriteElems_[m]) /
                static_cast<double>(ustats_[u].fires);
            port.expectedWords =
                static_cast<double>(memWriteElems_[m]);
            su.inputs.push_back(port);
        }
        su.outMemIdx = ue.outputMems.empty() ? -1 : ue.outputMems[0];
        su.outWords = std::max<int64_t>(
            1, ustats_[u].writeElems / ustats_[u].fires);
        su.totalFires = ustats_[u].fires;
        su.latency = ustats_[u].latency;
        sim.addUnit(su);
    }
    return sim;
}

void
EvalPipeline::runCycleSim(const Design &d)
{
    // Pass A: latency with a source matched to the first consumer's
    // appetite (the digital side is never input-bound).
    cyclesA_ = 0;
    simBuilt_ = false;
    if (!haveDigital_)
        return;
    double fast_rate = 1.0;
    for (size_t u = 0; u < d.units_.size(); ++u) {
        for (size_t p = 0; p < d.units_[u].inputMems.size(); ++p) {
            if (d.units_[u].inputMems[p] == d.adcOutputMem_ &&
                ustats_[u].fires > 0) {
                fast_rate = std::max(
                    fast_rate,
                    static_cast<double>(ustats_[u].portReadElems[p]) /
                        static_cast<double>(ustats_[u].fires));
            }
        }
    }
    sim_ = buildSim(d, fast_rate);
    simBuilt_ = true;
    CycleSimResult ra = sim_.run();
    cyclesA_ = ra.cycles;
    statsA_ = ra.stats;
}

// --------------------------------------------------------------- Timing

void
EvalPipeline::runTiming(const Design &d)
{
    const Time digital_latency =
        haveDigital_ ? static_cast<double>(cyclesA_) /
                           d.params_.digitalClock
                     : 0.0;

    delay_ = estimateDelays(1.0 / d.params_.fps, digital_latency,
                            static_cast<int>(d.analog_.size()));

    if (haveDigital_ && volume_ > 0) {
        // Pass B: stall check at the true ADC production rate.
        double adc_rate = static_cast<double>(volume_) /
                          (delay_.analogUnitTime *
                           d.params_.digitalClock);
        // Pass B reuses pass A's built topology; the two passes only
        // differ in the source rate. (A re-run starting at Timing on
        // a pipeline without a built sim rebuilds it on demand.)
        if (!simBuilt_) {
            sim_ = buildSim(d, adc_rate);
            simBuilt_ = true;
        }
        sim_.setSourceRate(0, adc_rate);
        CycleSimResult rb = sim_.run();
        statsB_ = rb.stats;
        if (rb.sourceBlocked) {
            fatal("Design %s: pipeline stall — the ADC output memory "
                  "fills up at the required frame rate (%lld blocked "
                  "cycles); enlarge the buffer or speed up the "
                  "consumer", d.params_.name.c_str(),
                  static_cast<long long>(rb.sourceBlockedCycles));
        }
    }
}

// --------------------------------------------------------------- Energy

void
EvalPipeline::runEnergy(const Design &d)
{
    EnergyReport rep;
    rep.designName = d.params_.name;
    rep.fps = d.params_.fps;
    rep.frameTime = delay_.frameTime;
    rep.digitalLatency = delay_.digitalLatency;
    rep.analogUnitTime = delay_.analogUnitTime;
    rep.numAnalogSlots = delay_.numSlots;

    AreaSummary areas;

    for (size_t i = 0; i < d.analog_.size(); ++i) {
        const Design::AnalogEntry &e = d.analog_[i];
        AnalogArrayEnergy ae = e.array.energyPerFrame(
            analogOps_[i], delay_.analogUnitTime, delay_.frameTime);
        EnergyCategory cat = EnergyCategory::Sen;
        if (e.role == AnalogRole::AnalogCompute)
            cat = EnergyCategory::CompA;
        else if (e.role == AnalogRole::AnalogMemory)
            cat = EnergyCategory::MemA;
        rep.units.push_back({e.array.name(), cat, e.array.layer(),
                             ae.total});
        areas.add(e.array.layer(), e.array.area());
    }

    for (size_t u = 0; u < d.units_.size(); ++u) {
        const Design::UnitEntry &ue = d.units_[u];
        rep.units.push_back({ue.name(), EnergyCategory::CompD,
                             ue.layer(), ustats_[u].energy});
        areas.add(ue.layer(), ue.area());
    }

    for (size_t m = 0; m < d.mems_.size(); ++m) {
        MemoryEnergy me = d.mems_[m].energyPerFrame(
            memReadWords_[m], memWriteWords_[m], delay_.frameTime);
        rep.units.push_back({d.mems_[m].name(), EnergyCategory::MemD,
                             d.mems_[m].layer(), me.total});
        areas.add(d.mems_[m].layer(), d.mems_[m].area());
    }

    // Final pipeline output leaves toward the host. Use the
    // topologically-last processing stage; resident-data Inputs (a
    // frame buffer's previous frame, region state) are not outputs
    // even when they sort last. The Digital stage's communication
    // volumes stay cached untouched; the output contribution is
    // added to a local total.
    int64_t mipi_bytes = mipiBytes_;
    const int64_t tsv_bytes = tsvBytes_;
    {
        StageId last_stage = topo_.back();
        for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
            if (d.sw_.stage(*it).op() != StageOp::Input) {
                last_stage = *it;
                break;
            }
        }
        const Stage &s = d.sw_.stage(last_stage);
        int64_t out_bytes = d.outputBytesOverride_ >= 0
                                ? d.outputBytesOverride_
                                : s.outputBytesPerFrame();
        const std::string &hw = d.mapping_.hwUnitOf(s.name());
        Layer out_layer;
        int ai = d.findAnalog(hw);
        if (ai >= 0) {
            out_layer =
                d.analog_[static_cast<size_t>(ai)].array.layer();
        } else {
            bool found = false;
            for (const auto &mem : d.mems_) {
                if (mem.name() == hw) {
                    out_layer = mem.layer();
                    found = true;
                    break;
                }
            }
            if (!found) {
                out_layer = d.units_[static_cast<size_t>(
                                         d.findUnit(hw, "output"))]
                                .layer();
            }
        }
        if (out_layer != Layer::OffChip)
            mipi_bytes += out_bytes;
    }

    if (mipi_bytes > 0) {
        if (!d.mipi_)
            fatal("Design %s: %lld B cross the package boundary but no "
                  "MIPI interface is configured",
                  d.params_.name.c_str(),
                  static_cast<long long>(mipi_bytes));
        rep.units.push_back({d.mipi_->name(), EnergyCategory::Mipi,
                             Layer::Sensor,
                             d.mipi_->energyForBytes(mipi_bytes)});
    }
    if (tsv_bytes > 0) {
        if (!d.tsv_)
            fatal("Design %s: %lld B cross between stacked layers but "
                  "no uTSV interface is configured",
                  d.params_.name.c_str(),
                  static_cast<long long>(tsv_bytes));
        rep.units.push_back({d.tsv_->name(), EnergyCategory::Tsv,
                             Layer::Sensor,
                             d.tsv_->energyForBytes(tsv_bytes)});
    }
    rep.mipiBytes = mipi_bytes;
    rep.tsvBytes = tsv_bytes;

    rep.sensorLayerArea = areas.sensorLayer;
    rep.computeLayerArea = areas.computeLayer;
    rep.footprint = areas.footprint();
    report_ = std::move(rep);
}

// ------------------------------------------------------------- the run

void
EvalPipeline::runStage(const Design &design, EvalStage stage)
{
    switch (stage) {
      case EvalStage::Map:
        runMap(design);
        break;
      case EvalStage::Analog:
        runAnalog(design);
        break;
      case EvalStage::Digital:
        runDigital(design);
        break;
      case EvalStage::CycleSim:
        runCycleSim(design);
        break;
      case EvalStage::Timing:
        runTiming(design);
        break;
      case EvalStage::Energy:
        runEnergy(design);
        break;
    }
}

bool
EvalPipeline::sameOutputs(const EvalPipeline &cached, EvalStage stage) const
{
    // Exact (bit-for-bit) comparison on purpose: the cutoff may only
    // fire when the re-run stage reproduced its cached output EXACTLY,
    // otherwise downstream reuse would break the bit-identity bar.
    switch (stage) {
      case EvalStage::Map:
        return topo_ == cached.topo_ && topoPos_ == cached.topoPos_ &&
               analogStages_ == cached.analogStages_ &&
               unitStages_ == cached.unitStages_ &&
               memPrefilled_ == cached.memPrefilled_;
      case EvalStage::Analog:
        return analogOps_ == cached.analogOps_ &&
               volume_ == cached.volume_ &&
               volumeBits_ == cached.volumeBits_;
      case EvalStage::Digital:
        return ustats_ == cached.ustats_ &&
               memReadWords_ == cached.memReadWords_ &&
               memWriteWords_ == cached.memWriteWords_ &&
               memWriteElems_ == cached.memWriteElems_ &&
               mipiBytes_ == cached.mipiBytes_ &&
               tsvBytes_ == cached.tsvBytes_ &&
               haveDigital_ == cached.haveDigital_;
      case EvalStage::CycleSim:
        return cyclesA_ == cached.cyclesA_;
      case EvalStage::Timing:
        return delay_.frameTime == cached.delay_.frameTime &&
               delay_.digitalLatency == cached.delay_.digitalLatency &&
               delay_.analogUnitTime == cached.delay_.analogUnitTime &&
               delay_.numSlots == cached.delay_.numSlots;
      case EvalStage::Energy:
        break; // never compared: Energy has no downstream consumer
    }
    return false;
}

EnergyReport
EvalPipeline::runFrom(const Design &design, EvalStage first)
{
    return runFrom(design, first, EvalStage::Energy);
}

EnergyReport
EvalPipeline::runFrom(const Design &design, EvalStage first,
                      EvalStage last_reader)
{
    stagesEntered_ = 0;
    cutoff_ = false;
    statsA_ = {};
    statsB_ = {};
    const int first_idx = static_cast<int>(first);
    const int reader_idx = static_cast<int>(last_reader);
    // A cutoff is only sound when the caller vouches (via the
    // dependency table's lastStage) that no stage AFTER last_reader
    // reads the changed design fields directly — then, if every
    // re-run stage up to last_reader reproduces its cached output
    // byte-for-byte, the remaining cached outputs (including the
    // report) are already the right answer.
    const bool try_cutoff = reader_idx >= first_idx &&
                            reader_idx < kEvalStageCount - 1;
    std::optional<EvalPipeline> before;
    if (try_cutoff)
        before.emplace(*this);
    bool equal_so_far = try_cutoff;
    for (int s = first_idx; s < kEvalStageCount; ++s) {
        const EvalStage stage = static_cast<EvalStage>(s);
        ++stagesEntered_;
        runStage(design, stage);
        if (equal_so_far && s <= reader_idx) {
            equal_so_far = sameOutputs(*before, stage);
            if (equal_so_far && s == reader_idx) {
                cutoff_ = true;
                return report_;
            }
        }
    }
    return report_;
}

EnergyReport
EvalPipeline::runAll(const Design &design)
{
    return runFrom(design, EvalStage::Map);
}

EnergyReport
EvalPipeline::runAllTimed(const Design &design,
                          double seconds_out[/*kEvalStageCount*/])
{
    stagesEntered_ = 0;
    cutoff_ = false;
    statsA_ = {};
    statsB_ = {};
    for (int s = 0; s < kEvalStageCount; ++s) {
        ++stagesEntered_;
        const auto t0 = std::chrono::steady_clock::now();
        runStage(design, static_cast<EvalStage>(s));
        seconds_out[s] += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    }
    return report_;
}

} // namespace camj
