#include "core/report.h"

#include <sstream>

#include "common/logging.h"

namespace camj
{

const char *
energyCategoryName(EnergyCategory cat)
{
    switch (cat) {
      case EnergyCategory::Sen: return "SEN";
      case EnergyCategory::CompA: return "COMP-A";
      case EnergyCategory::MemA: return "MEM-A";
      case EnergyCategory::CompD: return "COMP-D";
      case EnergyCategory::MemD: return "MEM-D";
      case EnergyCategory::Mipi: return "MIPI";
      case EnergyCategory::Tsv: return "uTSV";
    }
    return "?";
}

const std::vector<EnergyCategory> &
allEnergyCategories()
{
    static const std::vector<EnergyCategory> cats = {
        EnergyCategory::Sen, EnergyCategory::CompA,
        EnergyCategory::MemA, EnergyCategory::CompD,
        EnergyCategory::MemD, EnergyCategory::Mipi,
        EnergyCategory::Tsv,
    };
    return cats;
}

Energy
EnergyReport::total() const
{
    Energy e = 0.0;
    for (const auto &u : units)
        e += u.energy;
    return e;
}

Energy
EnergyReport::category(EnergyCategory cat) const
{
    Energy e = 0.0;
    for (const auto &u : units) {
        if (u.category == cat)
            e += u.energy;
    }
    return e;
}

Energy
EnergyReport::energyOf(const std::string &unit_name) const
{
    for (const auto &u : units) {
        if (u.name == unit_name)
            return u.energy;
    }
    fatal("EnergyReport %s: no unit named '%s'", designName.c_str(),
          unit_name.c_str());
}

bool
EnergyReport::hasUnit(const std::string &unit_name) const
{
    for (const auto &u : units) {
        if (u.name == unit_name)
            return true;
    }
    return false;
}

Power
EnergyReport::packagePower() const
{
    if (fps <= 0.0)
        fatal("EnergyReport %s: fps not set", designName.c_str());
    Energy e = 0.0;
    for (const auto &u : units) {
        // Off-chip units dissipate on the host SoC. The MIPI link
        // energy is spread over both PHYs and the channel and is
        // excluded from the on-die density figure (Sec. 6.2);
        // uTSV energy stays inside the package.
        if (u.layer == Layer::OffChip)
            continue;
        if (u.category == EnergyCategory::Mipi)
            continue;
        e += u.energy;
    }
    return e * fps;
}

double
EnergyReport::powerDensity() const
{
    if (footprint <= 0.0)
        fatal("EnergyReport %s: zero footprint; set unit areas",
              designName.c_str());
    return packagePower() / footprint;
}

Energy
EnergyReport::energyPerPixel(int64_t pixels) const
{
    if (pixels <= 0)
        fatal("EnergyReport %s: pixel count must be positive",
              designName.c_str());
    return total() / static_cast<double>(pixels);
}

std::string
EnergyReport::csv() const
{
    std::ostringstream os;
    os << "unit,category,layer,energy_pJ\n";
    for (const auto &u : units) {
        os << strprintf("%s,%s,%s,%.6f\n", u.name.c_str(),
                        energyCategoryName(u.category),
                        layerName(u.layer), u.energy / 1e-12);
    }
    os << strprintf("TOTAL,,,%.6f\n", total() / 1e-12);
    return os.str();
}

std::string
EnergyReport::pretty() const
{
    std::ostringstream os;
    os << "=== " << designName << " @ " << fps << " fps ===\n";
    os << strprintf("  frame %s | digital %s | analog slot %s (%d "
                    "slots)\n",
                    formatTime(frameTime).c_str(),
                    formatTime(digitalLatency).c_str(),
                    formatTime(analogUnitTime).c_str(),
                    numAnalogSlots);
    for (const auto &u : units) {
        os << strprintf("  %-28s %-7s %-15s %s\n", u.name.c_str(),
                        energyCategoryName(u.category),
                        layerName(u.layer),
                        formatEnergy(u.energy).c_str());
    }
    os << "  -- category totals --\n";
    for (EnergyCategory cat : allEnergyCategories()) {
        Energy e = category(cat);
        if (e > 0.0) {
            os << strprintf("  %-8s %s\n", energyCategoryName(cat),
                            formatEnergy(e).c_str());
        }
    }
    os << strprintf("  TOTAL    %s per frame (%s)\n",
                    formatEnergy(total()).c_str(),
                    formatPower(total() * fps).c_str());
    if (footprint > 0.0) {
        os << strprintf("  footprint %.3f mm^2, density %.4f mW/mm^2\n",
                        footprint / units::mm2,
                        powerDensity() * 1e3 / 1e6);
    }
    return os.str();
}

} // namespace camj
