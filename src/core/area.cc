#include "core/area.h"

#include <algorithm>

#include "common/logging.h"

namespace camj
{

void
AreaSummary::add(Layer layer, Area area)
{
    if (area < 0.0)
        fatal("AreaSummary: negative area");
    switch (layer) {
      case Layer::Sensor:
        sensorLayer += area;
        break;
      case Layer::Compute:
        computeLayer += area;
        break;
      case Layer::Dram:
        dramLayer += area;
        break;
      case Layer::OffChip:
        offChip += area;
        break;
    }
}

Area
AreaSummary::footprint() const
{
    if (stacked())
        return std::max({sensorLayer, computeLayer, dramLayer});
    return sensorLayer;
}

} // namespace camj
