/**
 * @file
 * Delay estimation (Sec. 4.1). The CIS pipeline is designed to never
 * stall, so every analog unit gets the same time slot T_A, derived
 * from the frame time and the simulated digital latency:
 *
 *   N_slots * T_A + T_D = T_FR     =>   T_A = (T_FR - T_D) / N_slots
 *
 * N_slots is the number of analog arrays on the path plus one: the
 * rolling readout of the pixel array overlaps exposure by one slot
 * (this reproduces the paper's Fig. 6, where two analog units yield
 * "3 x T_A + T_D = T_FR").
 */

#ifndef CAMJ_CORE_DELAY_H
#define CAMJ_CORE_DELAY_H

#include "common/units.h"

namespace camj
{

/** Result of the delay estimation. */
struct DelayEstimate
{
    /** T_FR = 1 / FPS. */
    Time frameTime = 0.0;
    /** T_D: simulated digital-domain latency. */
    Time digitalLatency = 0.0;
    /** T_A: per-analog-unit time slot. */
    Time analogUnitTime = 0.0;
    /** Number of analog slots (arrays + 1). */
    int numSlots = 0;
};

/**
 * Derive per-analog-unit time from the frame budget.
 *
 * @param frame_time T_FR; must be positive.
 * @param digital_latency T_D; must be non-negative.
 * @param num_analog_arrays Analog arrays on the pipeline path (>= 1).
 * @throws ConfigError if the digital latency consumes the frame
 *         budget (the design cannot meet the FPS target — redesign).
 */
DelayEstimate estimateDelays(Time frame_time, Time digital_latency,
                             int num_analog_arrays);

} // namespace camj

#endif // CAMJ_CORE_DELAY_H
