/**
 * @file
 * The algorithm-to-hardware mapping (the paper's camj_mapping()):
 * each software stage name maps to one hardware unit name. The
 * decoupling of sw/hw/mapping is what makes iterative exploration
 * cheap — a different split between analog/digital or in/off sensor
 * is just a different mapping.
 */

#ifndef CAMJ_CORE_MAPPING_H
#define CAMJ_CORE_MAPPING_H

#include <map>
#include <string>
#include <vector>

namespace camj
{

/** Stage-name to hardware-unit-name mapping. */
class Mapping
{
  public:
    /**
     * Map a stage to a hardware unit.
     *
     * @throws ConfigError if the stage is already mapped.
     */
    void map(const std::string &stage, const std::string &hw_unit);

    /** True if @p stage is mapped. */
    bool isMapped(const std::string &stage) const;

    /** Hardware unit of @p stage. @throws ConfigError if unmapped. */
    const std::string &hwUnitOf(const std::string &stage) const;

    /** All stages mapped onto @p hw_unit, in mapping order. */
    std::vector<std::string> stagesOn(const std::string &hw_unit) const;

    /** Number of mapped stages. */
    size_t size() const { return stageToHw_.size(); }

  private:
    std::map<std::string, std::string> stageToHw_;
    std::vector<std::string> order_;
};

} // namespace camj

#endif // CAMJ_CORE_MAPPING_H
