/**
 * @file
 * The staged evaluation core. Design::simulate() used to be one
 * monolithic function running the full Sec. 4 methodology; this file
 * splits it into an ordered pipeline of stages, each persisting its
 * outputs in an EvalPipeline:
 *
 *   Map      — DAG validation, mapping analysis (which stages run on
 *              which hardware), topological order, prefilled memories.
 *   Analog   — per-array operation counts via the dataflow-volume
 *              rule, plus the analog-chain checks (domains,
 *              throughput, ADC boundary).
 *   Digital  — digital pipeline analytics: unit fire counts and
 *              energies, per-memory word traffic, cross-layer
 *              communication volumes.
 *   CycleSim — cycle-level simulation pass A (consumer-paced source):
 *              the digital latency in cycles.
 *   Timing   — delay estimation (T_A from the frame budget) and the
 *              pass-B stall check at the true ADC rate.
 *   Energy   — energy assembly into the EnergyReport.
 *
 * Running all stages in order is exactly the old simulate() —
 * Design::simulate() is now a thin wrapper over runAll(). The point
 * of the split is INCREMENTAL re-simulation: a compiled design point
 * keeps its EvalPipeline, and when a spec delta only invalidates a
 * suffix of the stage list (see explore/incremental.h for the
 * field -> stage dependency table), runFrom() re-runs just that
 * suffix against the cached earlier outputs — bit-identical to a
 * full rebuild, because every stage is a pure function of the design
 * and the outputs of the stages before it.
 */

#ifndef CAMJ_CORE_PIPELINE_H
#define CAMJ_CORE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "core/delay.h"
#include "core/report.h"
#include "digital/cyclesim.h"
#include "sw/graph.h"

namespace camj
{

class Design;

/** The ordered stages of one design-point evaluation. */
enum class EvalStage
{
    Map = 0,
    Analog,
    Digital,
    CycleSim,
    Timing,
    Energy,
};

/** Number of stages (Energy is the last). */
inline constexpr int kEvalStageCount = 6;

/** Stable lower-case stage name ("map", "cyclesim", ...). */
const char *evalStageName(EvalStage stage);

/**
 * The persisted intermediate state of one evaluated design point —
 * the CompiledDesign IR's engine half. Each runX() stage reads the
 * design plus the outputs of earlier stages and overwrites its own
 * outputs; any failed check throws ConfigError exactly where the
 * monolithic simulate() did.
 *
 * An EvalPipeline is a plain value: copyable, and only meaningful
 * together with the Design it was last run against.
 */
class EvalPipeline
{
  public:
    /** Run every stage in order (the classic simulate()). */
    EnergyReport runAll(const Design &design);

    /**
     * Re-run the stage suffix starting at @p first against the cached
     * outputs of the earlier stages. The caller guarantees those
     * cached outputs are still valid for @p design (that is what the
     * dependency table in explore/incremental.h establishes);
     * given that, the result is bit-identical to runAll().
     */
    EnergyReport runFrom(const Design &design, EvalStage first);

    /**
     * runFrom() with an equality cut-off. @p last_reader is the
     * LATEST stage that reads the changed design fields directly
     * (the dependency table's lastStage); when every re-run stage up
     * to and including it reproduces its cached output byte-for-byte,
     * the dirty suffix stops there and the cached report is returned
     * unchanged — bit-identical by construction, since all remaining
     * stages would have read only unchanged inputs.
     */
    EnergyReport runFrom(const Design &design, EvalStage first,
                         EvalStage last_reader);

    /**
     * runAll() with a per-stage wall-clock breakdown: the time spent
     * inside each stage is ADDED to @p seconds_out (indexed by
     * EvalStage), so a caller can accumulate a profile over many
     * designs. Bench-only instrumentation; results are identical to
     * runAll().
     */
    EnergyReport runAllTimed(const Design &design,
                             double seconds_out[/*kEvalStageCount*/]);

    /** The Energy stage's output (valid after a successful run). */
    const EnergyReport &report() const { return report_; }

    /** Cycle-sim execution diagnostics of the last run: pass A plus
     *  pass B, zero for passes the run skipped. */
    CycleSimStats simStats() const
    {
        CycleSimStats s = statsA_;
        s += statsB_;
        return s;
    }

    /** Stages the last runFrom()/runAll() actually entered (counted
     *  before each stage runs, so a mid-stage ConfigError still
     *  counts the throwing stage). */
    int stagesEntered() const { return stagesEntered_; }

    /** True when the last runFrom() stopped at the equality cut-off. */
    bool cutoffHit() const { return cutoff_; }

  private:
    /** Per-unit analytics of the Digital stage. */
    struct UnitStats
    {
        int64_t fires = 0;
        Energy energy = 0.0;
        int latency = 1;
        /** Per input port, in elements. */
        std::vector<int64_t> portReadElems;
        int64_t writeElems = 0;
        int elemBits = 8;

        bool operator==(const UnitStats &) const = default;
    };

    // ----- Map outputs -----
    std::vector<StageId> topo_;
    std::vector<int> topoPos_;
    std::vector<std::vector<StageId>> analogStages_;
    std::vector<std::vector<StageId>> unitStages_;
    std::vector<bool> memPrefilled_;

    // ----- Analog outputs -----
    std::vector<int64_t> analogOps_;
    int64_t volume_ = 0;
    int volumeBits_ = 8;

    // ----- Digital outputs -----
    std::vector<UnitStats> ustats_;
    std::vector<int64_t> memReadWords_;
    std::vector<int64_t> memWriteWords_;
    std::vector<int64_t> memWriteElems_;
    int64_t mipiBytes_ = 0;
    int64_t tsvBytes_ = 0;
    bool haveDigital_ = false;

    // ----- CycleSim outputs -----
    int64_t cyclesA_ = 0;
    /**
     * Pass A's built topology, reused by the Timing stage's pass B
     * through CycleSim::setSourceRate() instead of a second
     * buildSim(). Deliberately NOT part of sameOutputs(CycleSim) —
     * the incremental cutoff contract only needs cyclesA_, and a
     * re-run that starts at Timing rebuilds the sim on demand when
     * this instance does not carry one.
     */
    CycleSim sim_;
    bool simBuilt_ = false;

    // ----- Timing outputs -----
    DelayEstimate delay_;

    // ----- Energy output -----
    EnergyReport report_;

    // ----- run bookkeeping (not stage state) -----
    int stagesEntered_ = 0;
    bool cutoff_ = false;
    /** Cycle-sim diagnostics of the last run (pass A / pass B). */
    CycleSimStats statsA_;
    CycleSimStats statsB_;

    void runStage(const Design &d, EvalStage stage);
    /** Stage @p stage's outputs equal @p cached's, bit-for-bit. */
    bool sameOutputs(const EvalPipeline &cached, EvalStage stage) const;

    void runMap(const Design &d);
    void runAnalog(const Design &d);
    void runDigital(const Design &d);
    void runCycleSim(const Design &d);
    void runTiming(const Design &d);
    void runEnergy(const Design &d);

    /** The cycle-level model shared by pass A (CycleSim stage) and
     *  pass B (Timing stage's stall check). */
    CycleSim buildSim(const Design &d, double source_rate_elems) const;
};

} // namespace camj

#endif // CAMJ_CORE_PIPELINE_H
