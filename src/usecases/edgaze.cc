#include "usecases/edgaze.h"

#include "spec/builder.h"
#include "tech/process_node.h"
#include "tech/scaling.h"
#include "usecases/params.h"

namespace camj
{

const char *
edgazeVariantName(EdgazeVariant variant)
{
    switch (variant) {
      case EdgazeVariant::TwoDOff: return "2D-Off";
      case EdgazeVariant::TwoDIn: return "2D-In";
      case EdgazeVariant::ThreeDIn: return "3D-In";
      case EdgazeVariant::ThreeDInStt: return "3D-In-STT";
      case EdgazeVariant::TwoDInMixed: return "2D-In-Mixed";
    }
    return "?";
}

namespace
{

namespace uc = usecase;

/** DNN layer shapes (stencil-exact, no padding). */
struct ConvSpec
{
    const char *name;
    Shape in, out, kernel, stride;
};

const ConvSpec dnnLayers[] = {
    { "DnnConv1", {320, 200, 1}, {318, 198, 8}, {3, 3, 1}, {1, 1, 1} },
    { "DnnConv2", {318, 198, 8}, {159, 99, 16}, {2, 2, 8}, {2, 2, 1} },
    { "DnnConv3", {159, 99, 16}, {157, 97, 16}, {3, 3, 16}, {1, 1, 1} },
    { "DnnConv4", {157, 97, 16}, {78, 48, 32}, {2, 2, 16}, {2, 2, 1} },
    { "DnnConv5", {78, 48, 32}, {76, 46, 4}, {3, 3, 32}, {1, 1, 1} },
};

/** Declare the common software DAG on the builder. */
void
declareSwGraph(spec::DesignBuilder &b, int event_bits)
{
    b.inputStage("Input", {uc::edgazeWidth, uc::edgazeHeight, 1})
        .stage({.name = "Downsample",
                .op = StageOp::Binning,
                .inputSize = {uc::edgazeWidth, uc::edgazeHeight, 1},
                .outputSize = {320, 200, 1},
                .kernel = {2, 2, 1},
                .stride = {2, 2, 1}},
               {"Input"})
        .inputStage("PrevFrame", {320, 200, 1})
        .stage({.name = "FrameSubtract",
                .op = StageOp::ElementwiseSub,
                .inputSize = {320, 200, 1},
                .outputSize = {320, 200, 1},
                .bitDepth = event_bits},
               {"Downsample", "PrevFrame"});

    std::string prev = "FrameSubtract";
    for (const ConvSpec &c : dnnLayers) {
        b.stage({.name = c.name,
                 .op = StageOp::Conv2d,
                 .inputSize = c.in,
                 .outputSize = c.out,
                 .kernel = c.kernel,
                 .stride = c.stride,
                 .bitDepth = 8},
                {prev});
        prev = c.name;
    }
}

/** Pixel array shared by all variants. @p binning_in_pixel merges
 *  2x2 clusters via charge binning (mixed-signal variant). */
spec::AnalogArraySpec
pixelArraySpec(int sensor_nm, bool binning_in_pixel)
{
    const NodeParams node = nodeParams(sensor_nm);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = node.vdda;
    pixel.aps.columnLoadCap = 1.0e-12;
    pixel.aps.pixelsPerComponent = binning_in_pixel ? 4 : 1;

    spec::AnalogArraySpec a;
    a.name = "PixelArray";
    a.role = AnalogRole::Sensing;
    if (binning_in_pixel) {
        a.numComponents = {320, 200, 1};
        a.inputShape = {1, 320, 1};
        a.outputShape = {1, 320, 1};
    } else {
        a.numComponents = {uc::edgazeWidth, uc::edgazeHeight, 1};
        a.inputShape = {1, uc::edgazeWidth, 1};
        a.outputShape = {1, uc::edgazeWidth, 1};
    }
    a.componentArea = uc::edgazePitchUm * uc::edgazePitchUm *
                      units::um2 * pixel.aps.pixelsPerComponent;
    a.component = pixel;
    return a;
}

/** Add the DNN engine + buffer; shared by all variants. */
void
declareDnn(spec::DesignBuilder &b, Layer layer, int nm, bool sttram)
{
    if (sttram) {
        b.sttram("DnnBuffer", layer, MemoryKind::DoubleBuffer,
                 uc::edgazeDnnBufBytes / 8, 64, nm,
                 uc::dnnBufActiveFraction);
    } else {
        b.sram("DnnBuffer", layer, MemoryKind::DoubleBuffer,
               uc::edgazeDnnBufBytes / 8, 64, nm,
               uc::dnnBufActiveFraction);
    }

    SystolicArrayParams sp;
    sp.name = "DnnArray";
    sp.layer = layer;
    sp.rows = uc::edgazeDnnDim;
    sp.cols = uc::edgazeDnnDim;
    sp.energyPerMac = macEnergy8bit(nm);
    sp.peArea = macArea8bit(nm);
    b.systolicArray(sp, {"DnnBuffer"});
}

spec::DesignSpec
digitalVariantSpec(EdgazeVariant variant, int sensor_nm)
{
    Layer digital_layer = Layer::Sensor;
    int digital_nm = sensor_nm;
    bool sttram = false;
    switch (variant) {
      case EdgazeVariant::TwoDOff:
        digital_layer = Layer::OffChip;
        digital_nm = uc::socNode;
        break;
      case EdgazeVariant::ThreeDInStt:
        sttram = true;
        [[fallthrough]];
      case EdgazeVariant::ThreeDIn:
        digital_layer = Layer::Compute;
        digital_nm = uc::socNode;
        break;
      default:
        break;
    }

    spec::DesignBuilder b(std::string("edgaze-") +
                          edgazeVariantName(variant) + "-" +
                          std::to_string(sensor_nm) + "nm");
    b.fps(uc::edgazeFps).digitalClock(100e6);

    declareSwGraph(b, 8);

    b.analogArray(pixelArraySpec(sensor_nm, false));
    spec::ComponentSpec adc;
    adc.kind = spec::ComponentKind::ColumnAdc;
    adc.adc = {.bits = 10};
    b.analogArray({.name = "AdcArray",
                   .role = AnalogRole::Adc,
                   .numComponents = {uc::edgazeWidth, 1, 1},
                   .inputShape = {1, uc::edgazeWidth, 1},
                   .outputShape = {1, uc::edgazeWidth, 1},
                   .componentArea = 1.0e-9,
                   .component = adc});

    // Digital pipeline: line buffer -> downsample -> fifo + frame
    // buffer -> subtract -> DNN buffer -> systolic DNN.
    b.sram("LineBuffer", digital_layer, MemoryKind::LineBuffer,
           2 * uc::edgazeWidth, 8, digital_nm,
           uc::streamBufActiveFraction);
    b.sram("PixFifo", digital_layer, MemoryKind::Fifo, 2048, 8,
           digital_nm, uc::streamBufActiveFraction);
    if (sttram) {
        // The retained previous frame cannot be power-gated in SRAM;
        // STT-RAM retains it for free.
        b.sttram("FrameBuffer", digital_layer, MemoryKind::FrameBuffer,
                 uc::edgazeFrameBufWords, 8, digital_nm, 1.0);
    } else {
        b.sram("FrameBuffer", digital_layer, MemoryKind::FrameBuffer,
               uc::edgazeFrameBufWords, 8, digital_nm, 1.0);
    }

    ComputeUnitParams down;
    down.name = "DownsampleUnit";
    down.layer = digital_layer;
    down.inputPixelsPerCycle = {2, 2, 1};
    down.outputPixelsPerCycle = {1, 1, 1};
    down.energyPerCycle = 4.0 * aluEnergy16bit(digital_nm) *
                          uc::edgazeAluOverhead;
    down.numStages = 2;
    down.opsPerCycle = 4;
    b.computeUnit(down, {"LineBuffer"}, {"PixFifo", "FrameBuffer"});

    ComputeUnitParams sub;
    sub.name = "SubtractUnit";
    sub.layer = digital_layer;
    sub.inputPixelsPerCycle = {1, 1, 1};
    sub.outputPixelsPerCycle = {1, 1, 1};
    sub.energyPerCycle = 2.0 * aluEnergy16bit(digital_nm) *
                         uc::edgazeAluOverhead;
    sub.numStages = 2;
    sub.opsPerCycle = 1;
    b.computeUnit(sub, {"PixFifo", "FrameBuffer"});

    declareDnn(b, digital_layer, digital_nm, sttram);
    // The DNN buffer exists only now, so wire the subtractor's output
    // here instead of at its declaration.
    b.connectUnitToMemory("SubtractUnit", "DnnBuffer");

    b.adcOutput("LineBuffer").mipi();
    if (digital_layer == Layer::Compute)
        b.tsv();

    if (variant != EdgazeVariant::TwoDOff)
        b.pipelineOutputBytes(uc::edgazeRoiBytes);

    b.map("Input", "PixelArray")
        .map("Downsample", "DownsampleUnit")
        .map("PrevFrame", "FrameBuffer")
        .map("FrameSubtract", "SubtractUnit");
    for (const ConvSpec &c : dnnLayers)
        b.map(c.name, "DnnArray");
    return b.spec();
}

spec::DesignSpec
mixedVariantSpec(int sensor_nm)
{
    spec::DesignBuilder b(std::string("edgaze-2D-In-Mixed-") +
                          std::to_string(sensor_nm) + "nm");
    b.fps(uc::edgazeFps).digitalClock(100e6);

    // Binary event map out of the analog comparator.
    declareSwGraph(b, 1);

    const NodeParams node = nodeParams(sensor_nm);

    // S1 (2x2 downsample) happens by charge binning inside the pixel.
    b.analogArray(pixelArraySpec(sensor_nm, true));

    // Active analog frame buffer (Fig. 10's 4T-APS-style memory).
    {
        spec::ComponentSpec mem;
        mem.kind = spec::ComponentKind::ActiveAnalogMemory;
        mem.analogMem.bits = 8;
        mem.analogMem.vdda = node.vdda;
        mem.analogMem.storageCap = uc::edgazeMixedCap;
        mem.analogMem.readoutLoadCap = 0.5e-12;
        mem.analogMem.readsPerValue = 1;
        b.analogArray({.name = "AnalogFrameBuffer",
                       .role = AnalogRole::AnalogMemory,
                       .numComponents = {320, 200, 1},
                       .inputShape = {1, 320, 1},
                       .outputShape = {1, 320, 1},
                       .componentArea = 1.0e-10,
                       .component = mem});
    }

    // S2: switched-capacitor subtractor + comparator per column,
    // declared as an explicit Sec. 4.2 cell chain.
    {
        spec::CustomComponentSpec pe;
        pe.name = "SubCompPe";
        pe.input = SignalDomain::Voltage;
        pe.output = SignalDomain::Digital;

        spec::CellSpec caps;
        caps.cls = spec::CellClass::Dynamic;
        caps.name = "sc-sub-caps";
        caps.caps = std::vector<CapNode>(
            2, CapNode{ uc::edgazeMixedCap, 1.0 });
        pe.cells.push_back(caps);

        // Settling to 8-bit accuracy needs GBW ~ (bits+1)*ln2 / t
        // (the Eq. 6 precision requirement reflected in the opamp
        // bandwidth), and the subtractor drives the full column bus
        // plus the comparator input, not just its own 100 fF caps.
        // This is why Fig. 13's analog compute energy *increases*.
        spec::CellSpec opamp;
        opamp.cls = spec::CellClass::StaticBias;
        opamp.name = "sub-opamp";
        opamp.bias.loadCapacitance = 2.0e-12;
        opamp.bias.voltageSwing = 1.0;
        opamp.bias.vdda = node.vdda;
        opamp.bias.gain = 6.24; // (8+1) * ln2
        opamp.bias.gmOverId = 10.0;
        opamp.bias.mode = BiasMode::GmOverId;
        pe.cells.push_back(opamp);

        spec::CellSpec cmp;
        cmp.cls = spec::CellClass::NonLinear;
        cmp.name = "event-comparator";
        cmp.bits = 1;
        pe.cells.push_back(cmp);

        spec::ComponentSpec comp;
        comp.kind = spec::ComponentKind::Custom;
        comp.custom = pe;
        b.analogArray({.name = "AnalogPeArray",
                       .role = AnalogRole::AnalogCompute,
                       .numComponents = {320, 1, 1},
                       .inputShape = {1, 320, 1},
                       .outputShape = {1, 320, 1},
                       .componentArea = 2.0e-10,
                       .component = comp});
    }

    // S3 stays digital at the sensor node.
    declareDnn(b, Layer::Sensor, sensor_nm, false);
    b.adcOutput("DnnBuffer");

    b.mipi().pipelineOutputBytes(uc::edgazeRoiBytes);

    b.map("Input", "PixelArray")
        .map("Downsample", "PixelArray")
        .map("PrevFrame", "AnalogFrameBuffer")
        .map("FrameSubtract", "AnalogPeArray");
    for (const ConvSpec &c : dnnLayers)
        b.map(c.name, "DnnArray");
    return b.spec();
}

} // namespace

int64_t
edgazeDnnMacs()
{
    int64_t total = 0;
    for (const ConvSpec &c : dnnLayers)
        total += c.out.count() * c.kernel.count();
    return total;
}

spec::DesignSpec
edgazeSpec(EdgazeVariant variant, int sensor_nm)
{
    if (variant == EdgazeVariant::TwoDInMixed)
        return mixedVariantSpec(sensor_nm);
    return digitalVariantSpec(variant, sensor_nm);
}

std::shared_ptr<Design>
buildEdgaze(EdgazeVariant variant, int sensor_nm)
{
    return std::make_shared<Design>(
        edgazeSpec(variant, sensor_nm).materialize());
}

} // namespace camj
