#include "usecases/edgaze.h"

#include "tech/process_node.h"
#include "tech/scaling.h"
#include "usecases/params.h"

namespace camj
{

const char *
edgazeVariantName(EdgazeVariant variant)
{
    switch (variant) {
      case EdgazeVariant::TwoDOff: return "2D-Off";
      case EdgazeVariant::TwoDIn: return "2D-In";
      case EdgazeVariant::ThreeDIn: return "3D-In";
      case EdgazeVariant::ThreeDInStt: return "3D-In-STT";
      case EdgazeVariant::TwoDInMixed: return "2D-In-Mixed";
    }
    return "?";
}

namespace
{

namespace uc = usecase;

/** DNN layer shapes (stencil-exact, no padding). */
struct ConvSpec
{
    const char *name;
    Shape in, out, kernel, stride;
};

const ConvSpec dnnLayers[] = {
    { "DnnConv1", {320, 200, 1}, {318, 198, 8}, {3, 3, 1}, {1, 1, 1} },
    { "DnnConv2", {318, 198, 8}, {159, 99, 16}, {2, 2, 8}, {2, 2, 1} },
    { "DnnConv3", {159, 99, 16}, {157, 97, 16}, {3, 3, 16}, {1, 1, 1} },
    { "DnnConv4", {157, 97, 16}, {78, 48, 32}, {2, 2, 16}, {2, 2, 1} },
    { "DnnConv5", {78, 48, 32}, {76, 46, 4}, {3, 3, 32}, {1, 1, 1} },
};

/** Build the common software DAG; returns the id of the frame-
 *  subtraction stage's previous-frame input. */
void
buildSwGraph(SwGraph &sw, int event_bits)
{
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {uc::edgazeWidth,
                                             uc::edgazeHeight, 1},
                              .bitDepth = 8});
    StageId down = sw.addStage({.name = "Downsample",
                                .op = StageOp::Binning,
                                .inputSize = {uc::edgazeWidth,
                                              uc::edgazeHeight, 1},
                                .outputSize = {320, 200, 1},
                                .kernel = {2, 2, 1},
                                .stride = {2, 2, 1}});
    StageId prev = sw.addStage({.name = "PrevFrame",
                                .op = StageOp::Input,
                                .outputSize = {320, 200, 1},
                                .bitDepth = 8});
    StageId sub = sw.addStage({.name = "FrameSubtract",
                               .op = StageOp::ElementwiseSub,
                               .inputSize = {320, 200, 1},
                               .outputSize = {320, 200, 1},
                               .bitDepth = event_bits});
    sw.connect(in, down);
    sw.connect(down, sub);
    sw.connect(prev, sub);

    StageId prev_stage = sub;
    for (const ConvSpec &c : dnnLayers) {
        StageId id = sw.addStage({.name = c.name,
                                  .op = StageOp::Conv2d,
                                  .inputSize = c.in,
                                  .outputSize = c.out,
                                  .kernel = c.kernel,
                                  .stride = c.stride,
                                  .bitDepth = 8});
        sw.connect(prev_stage, id);
        prev_stage = id;
    }
}

/** Pixel array shared by all variants. @p binning_in_pixel merges
 *  2x2 clusters via charge binning (mixed-signal variant). */
AnalogArray
buildPixelArray(int sensor_nm, bool binning_in_pixel)
{
    const NodeParams node = nodeParams(sensor_nm);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.columnLoadCap = 1.0e-12;
    aps.pixelsPerComponent = binning_in_pixel ? 4 : 1;

    AnalogArrayParams ap;
    ap.name = "PixelArray";
    if (binning_in_pixel) {
        ap.numComponents = {320, 200, 1};
        ap.inputShape = {1, 320, 1};
        ap.outputShape = {1, 320, 1};
    } else {
        ap.numComponents = {uc::edgazeWidth, uc::edgazeHeight, 1};
        ap.inputShape = {1, uc::edgazeWidth, 1};
        ap.outputShape = {1, uc::edgazeWidth, 1};
    }
    ap.componentArea = uc::edgazePitchUm * uc::edgazePitchUm *
                       units::um2 * aps.pixelsPerComponent;
    return AnalogArray(ap, makeAps4T(aps));
}

/** Add the DNN engine + buffer; shared by all variants. */
void
addDnn(Design &d, Layer layer, int nm, bool sttram)
{
    if (sttram) {
        d.addMemory(makeSttramMemory("DnnBuffer", layer,
                                     MemoryKind::DoubleBuffer,
                                     uc::edgazeDnnBufBytes / 8, 64, nm,
                                     uc::dnnBufActiveFraction));
    } else {
        d.addMemory(makeSramMemory("DnnBuffer", layer,
                                   MemoryKind::DoubleBuffer,
                                   uc::edgazeDnnBufBytes / 8, 64, nm,
                                   uc::dnnBufActiveFraction));
    }

    SystolicArrayParams sp;
    sp.name = "DnnArray";
    sp.layer = layer;
    sp.rows = uc::edgazeDnnDim;
    sp.cols = uc::edgazeDnnDim;
    sp.energyPerMac = macEnergy8bit(nm);
    sp.peArea = macArea8bit(nm);
    d.addSystolicArray(SystolicArray(sp));
    d.connectMemoryToUnit("DnnBuffer", "DnnArray");
}

std::shared_ptr<Design>
buildDigitalVariant(EdgazeVariant variant, int sensor_nm)
{
    Layer digital_layer = Layer::Sensor;
    int digital_nm = sensor_nm;
    bool sttram = false;
    switch (variant) {
      case EdgazeVariant::TwoDOff:
        digital_layer = Layer::OffChip;
        digital_nm = uc::socNode;
        break;
      case EdgazeVariant::ThreeDInStt:
        sttram = true;
        [[fallthrough]];
      case EdgazeVariant::ThreeDIn:
        digital_layer = Layer::Compute;
        digital_nm = uc::socNode;
        break;
      default:
        break;
    }

    DesignParams dp;
    dp.name = std::string("edgaze-") + edgazeVariantName(variant) +
              "-" + std::to_string(sensor_nm) + "nm";
    dp.fps = uc::edgazeFps;
    dp.digitalClock = 100e6;
    auto d = std::make_shared<Design>(dp);

    buildSwGraph(d->sw(), 8);

    d->addAnalogArray(buildPixelArray(sensor_nm, false),
                      AnalogRole::Sensing);
    {
        AnalogArrayParams ap;
        ap.name = "AdcArray";
        ap.numComponents = {uc::edgazeWidth, 1, 1};
        ap.inputShape = {1, uc::edgazeWidth, 1};
        ap.outputShape = {1, uc::edgazeWidth, 1};
        ap.componentArea = 1.0e-9;
        d->addAnalogArray(AnalogArray(ap, makeColumnAdc({.bits = 10})),
                          AnalogRole::Adc);
    }

    // Digital pipeline: line buffer -> downsample -> fifo + frame
    // buffer -> subtract -> DNN buffer -> systolic DNN.
    d->addMemory(makeSramMemory("LineBuffer", digital_layer,
                                MemoryKind::LineBuffer,
                                2 * uc::edgazeWidth, 8, digital_nm,
                                uc::streamBufActiveFraction));
    d->addMemory(makeSramMemory("PixFifo", digital_layer,
                                MemoryKind::Fifo, 2048, 8, digital_nm,
                                uc::streamBufActiveFraction));
    if (sttram) {
        // The retained previous frame cannot be power-gated in SRAM;
        // STT-RAM retains it for free.
        d->addMemory(makeSttramMemory("FrameBuffer", digital_layer,
                                      MemoryKind::FrameBuffer,
                                      uc::edgazeFrameBufWords, 8,
                                      digital_nm, 1.0));
    } else {
        d->addMemory(makeSramMemory("FrameBuffer", digital_layer,
                                    MemoryKind::FrameBuffer,
                                    uc::edgazeFrameBufWords, 8,
                                    digital_nm, 1.0));
    }

    ComputeUnitParams down;
    down.name = "DownsampleUnit";
    down.layer = digital_layer;
    down.inputPixelsPerCycle = {2, 2, 1};
    down.outputPixelsPerCycle = {1, 1, 1};
    down.energyPerCycle = 4.0 * aluEnergy16bit(digital_nm) *
                          uc::edgazeAluOverhead;
    down.numStages = 2;
    down.opsPerCycle = 4;
    d->addComputeUnit(ComputeUnit(down));

    ComputeUnitParams sub;
    sub.name = "SubtractUnit";
    sub.layer = digital_layer;
    sub.inputPixelsPerCycle = {1, 1, 1};
    sub.outputPixelsPerCycle = {1, 1, 1};
    sub.energyPerCycle = 2.0 * aluEnergy16bit(digital_nm) *
                         uc::edgazeAluOverhead;
    sub.numStages = 2;
    sub.opsPerCycle = 1;
    d->addComputeUnit(ComputeUnit(sub));

    addDnn(*d, digital_layer, digital_nm, sttram);

    d->setAdcOutput("LineBuffer");
    d->connectMemoryToUnit("LineBuffer", "DownsampleUnit");
    d->connectUnitToMemory("DownsampleUnit", "PixFifo");
    d->connectUnitToMemory("DownsampleUnit", "FrameBuffer");
    d->connectMemoryToUnit("PixFifo", "SubtractUnit");
    d->connectMemoryToUnit("FrameBuffer", "SubtractUnit");
    d->connectUnitToMemory("SubtractUnit", "DnnBuffer");

    d->setMipi(makeMipiCsi2());
    if (digital_layer == Layer::Compute)
        d->setTsv(makeMicroTsv());

    if (variant != EdgazeVariant::TwoDOff)
        d->setPipelineOutputBytes(uc::edgazeRoiBytes);

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("Downsample", "DownsampleUnit");
    m.map("PrevFrame", "FrameBuffer");
    m.map("FrameSubtract", "SubtractUnit");
    for (const ConvSpec &c : dnnLayers)
        m.map(c.name, "DnnArray");
    return d;
}

std::shared_ptr<Design>
buildMixedVariant(int sensor_nm)
{
    DesignParams dp;
    dp.name = std::string("edgaze-2D-In-Mixed-") +
              std::to_string(sensor_nm) + "nm";
    dp.fps = uc::edgazeFps;
    dp.digitalClock = 100e6;
    auto d = std::make_shared<Design>(dp);

    // Binary event map out of the analog comparator.
    buildSwGraph(d->sw(), 1);

    const NodeParams node = nodeParams(sensor_nm);

    // S1 (2x2 downsample) happens by charge binning inside the pixel.
    d->addAnalogArray(buildPixelArray(sensor_nm, true),
                      AnalogRole::Sensing);

    // Active analog frame buffer (Fig. 10's 4T-APS-style memory).
    {
        AnalogMemoryParams am;
        am.bits = 8;
        am.vdda = node.vdda;
        am.storageCap = uc::edgazeMixedCap;
        am.readoutLoadCap = 0.5e-12;
        am.readsPerValue = 1;
        AnalogArrayParams ap;
        ap.name = "AnalogFrameBuffer";
        ap.numComponents = {320, 200, 1};
        ap.inputShape = {1, 320, 1};
        ap.outputShape = {1, 320, 1};
        ap.componentArea = 1.0e-10;
        d->addAnalogArray(AnalogArray(ap, makeActiveAnalogMemory(am)),
                          AnalogRole::AnalogMemory);
    }

    // S2: switched-capacitor subtractor + comparator per column.
    {
        AComponent pe("SubCompPe", SignalDomain::Voltage,
                      SignalDomain::Digital);
        pe.addCell(std::make_shared<DynamicCell>(
                       "sc-sub-caps",
                       std::vector<CapNode>(
                           2, CapNode{ uc::edgazeMixedCap, 1.0 })),
                   1, 1);
        StaticBiasParams ob;
        // Settling to 8-bit accuracy needs GBW ~ (bits+1)*ln2 / t
        // (the Eq. 6 precision requirement reflected in the opamp
        // bandwidth), and the subtractor drives the full column bus
        // plus the comparator input, not just its own 100 fF caps.
        // This is why Fig. 13's analog compute energy *increases*.
        ob.loadCapacitance = 2.0e-12;
        ob.voltageSwing = 1.0;
        ob.vdda = node.vdda;
        ob.gain = 6.24; // (8+1) * ln2
        ob.gmOverId = 10.0;
        ob.mode = BiasMode::GmOverId;
        pe.addCell(std::make_shared<StaticBiasedCell>("sub-opamp", ob),
                   1, 1);
        pe.addCell(std::make_shared<NonLinearCell>("event-comparator",
                                                   1),
                   1, 1);

        AnalogArrayParams ap;
        ap.name = "AnalogPeArray";
        ap.numComponents = {320, 1, 1};
        ap.inputShape = {1, 320, 1};
        ap.outputShape = {1, 320, 1};
        ap.componentArea = 2.0e-10;
        d->addAnalogArray(AnalogArray(ap, pe),
                          AnalogRole::AnalogCompute);
    }

    // S3 stays digital at the sensor node.
    addDnn(*d, Layer::Sensor, sensor_nm, false);
    d->setAdcOutput("DnnBuffer");

    d->setMipi(makeMipiCsi2());
    d->setPipelineOutputBytes(uc::edgazeRoiBytes);

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("Downsample", "PixelArray");
    m.map("PrevFrame", "AnalogFrameBuffer");
    m.map("FrameSubtract", "AnalogPeArray");
    for (const ConvSpec &c : dnnLayers)
        m.map(c.name, "DnnArray");
    return d;
}

} // namespace

int64_t
edgazeDnnMacs()
{
    int64_t total = 0;
    for (const ConvSpec &c : dnnLayers)
        total += c.out.count() * c.kernel.count();
    return total;
}

std::shared_ptr<Design>
buildEdgaze(EdgazeVariant variant, int sensor_nm)
{
    if (variant == EdgazeVariant::TwoDInMixed)
        return buildMixedVariant(sensor_nm);
    return buildDigitalVariant(variant, sensor_nm);
}

} // namespace camj
