#include "usecases/explorer.h"

#include <sstream>

#include "common/logging.h"
#include "common/units.h"

namespace camj
{

BreakdownRow
breakdownOf(const std::string &label, const EnergyReport &report)
{
    auto uj = [&](EnergyCategory cat) {
        return report.category(cat) / units::uJ;
    };
    BreakdownRow row;
    row.label = label;
    row.senUJ = uj(EnergyCategory::Sen);
    row.compAUJ = uj(EnergyCategory::CompA);
    row.memAUJ = uj(EnergyCategory::MemA);
    row.compDUJ = uj(EnergyCategory::CompD);
    row.memDUJ = uj(EnergyCategory::MemD);
    row.mipiUJ = uj(EnergyCategory::Mipi);
    row.tsvUJ = uj(EnergyCategory::Tsv);
    row.totalUJ = report.total() / units::uJ;
    return row;
}

std::string
formatBreakdownTable(const std::vector<BreakdownRow> &rows)
{
    std::ostringstream os;
    os << strprintf("%-22s %9s %9s %9s %9s %9s %9s %9s %10s\n",
                    "config", "SEN", "COMP-A", "MEM-A", "COMP-D",
                    "MEM-D", "MIPI", "uTSV", "TOTAL[uJ]");
    for (const BreakdownRow &r : rows) {
        os << strprintf(
            "%-22s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %10.2f\n",
            r.label.c_str(), r.senUJ, r.compAUJ, r.memAUJ, r.compDUJ,
            r.memDUJ, r.mipiUJ, r.tsvUJ, r.totalUJ);
    }
    return os.str();
}

double
powerDensityMwPerMm2(const EnergyReport &report)
{
    // powerDensity() is W/m^2; 1 W/m^2 == 1e-3 mW/mm^2.
    return report.powerDensity() * 1e-3;
}

} // namespace camj
