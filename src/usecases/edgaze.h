/**
 * @file
 * Ed-Gaze (Feng et al., IEEE VR'22) as a CamJ workload: 2x2
 * downsampling, frame subtraction against the previous frame, and an
 * ROI DNN (the paper's Fig. 8b). Beyond the placement variants of
 * Fig. 9b, this module also builds the mixed-signal design of
 * Fig. 10, where the first two stages move into the analog domain
 * (charge binning in the pixel array, an active analog frame buffer,
 * and a switched-capacitor subtractor + comparator PE array).
 *
 * Every variant is defined as a DesignSpec generator (edgazeSpec), so
 * the studies are serializable documents; buildEdgaze() is a thin
 * materializing wrapper.
 */

#ifndef CAMJ_USECASES_EDGAZE_H
#define CAMJ_USECASES_EDGAZE_H

#include <cstdint>
#include <memory>

#include "core/design.h"
#include "spec/spec.h"
#include "usecases/rhythmic.h" // SensorVariant

namespace camj
{

/** Ed-Gaze hardware variants (Fig. 9b + Fig. 11). */
enum class EdgazeVariant
{
    TwoDOff,
    TwoDIn,
    ThreeDIn,
    ThreeDInStt,
    /** 2D-In with stages S1/S2 in the analog domain (Fig. 10). */
    TwoDInMixed,
};

/** Human-readable variant name. */
const char *edgazeVariantName(EdgazeVariant variant);

/** Total DNN multiply-accumulates per frame (~5.8e7, matching the
 *  paper's 5.76e7 within 3%). */
int64_t edgazeDnnMacs();

/**
 * The Ed-Gaze design as a serializable spec.
 *
 * @param variant Placement / signal-domain variant.
 * @param sensor_nm CIS process node (130 or 65 in the paper).
 * @throws ConfigError on invalid nodes.
 */
spec::DesignSpec edgazeSpec(EdgazeVariant variant, int sensor_nm);

/** Materialize edgazeSpec() onto the Design engine. */
std::shared_ptr<Design> buildEdgaze(EdgazeVariant variant,
                                    int sensor_nm);

} // namespace camj

#endif // CAMJ_USECASES_EDGAZE_H
