#include "usecases/studies.h"

#include "spec/samples.h"
#include "usecases/edgaze.h"
#include "usecases/rhythmic.h"
#include "validation/chips.h"

namespace camj
{

std::vector<PaperStudy>
allPaperStudies()
{
    std::vector<PaperStudy> studies;
    auto add = [&](spec::DesignSpec spec) {
        studies.push_back({spec.name, std::move(spec)});
    };

    // Fig. 9a / Table 3: Rhythmic Pixel Regions placements. The
    // 3D-In-STT cell is absent here exactly as in the paper (the
    // metadata buffer is below the STT-RAM minimum).
    for (int nm : {130, 65}) {
        for (SensorVariant v : {SensorVariant::TwoDOff,
                                SensorVariant::TwoDIn,
                                SensorVariant::ThreeDIn})
            add(rhythmicSpec(v, nm));
    }

    // Fig. 9b / 10-13 / Table 3: every Ed-Gaze variant.
    for (int nm : {130, 65}) {
        for (EdgazeVariant v : {EdgazeVariant::TwoDOff,
                                EdgazeVariant::TwoDIn,
                                EdgazeVariant::ThreeDIn,
                                EdgazeVariant::ThreeDInStt,
                                EdgazeVariant::TwoDInMixed})
            add(edgazeSpec(v, nm));
    }

    // Table 2 / Fig. 7: the nine validation chips.
    for (ChipSpec &chip : allChipSpecs())
        add(std::move(chip.design));

    // The canonical sample detector at both paper CIS nodes.
    add(spec::sampleDetectorSpec(30.0, 130));
    add(spec::sampleDetectorSpec(30.0, 65));

    return studies;
}

std::vector<spec::DesignSpec>
allPaperStudySpecs()
{
    std::vector<spec::DesignSpec> specs;
    for (PaperStudy &s : allPaperStudies())
        specs.push_back(std::move(s.spec));
    return specs;
}

spec::GeneratorSpecSource
paperStudySource()
{
    // The same 27 points in the same order as allPaperStudies(), but
    // each pull runs exactly one spec generator. The index layout:
    // [0,6) rhythmic, [6,16) edgaze, [16,25) chips, [25,27) samples.
    static constexpr SensorVariant kRhythmic[] = {
        SensorVariant::TwoDOff, SensorVariant::TwoDIn,
        SensorVariant::ThreeDIn};
    static constexpr EdgazeVariant kEdgaze[] = {
        EdgazeVariant::TwoDOff, EdgazeVariant::TwoDIn,
        EdgazeVariant::ThreeDIn, EdgazeVariant::ThreeDInStt,
        EdgazeVariant::TwoDInMixed};
    static constexpr ChipSpec (*kChips[])() = {
        isscc17Spec, jssc19Spec, sensors20Spec, isscc21Spec,
        jssc21ISpec, jssc21IISpec, vlsi21Spec, isscc22Spec,
        tcas22Spec};
    static constexpr size_t kTotal = 27;

    return spec::GeneratorSpecSource(
        [](size_t i) -> std::optional<spec::DesignSpec> {
            if (i < 6)
                return rhythmicSpec(kRhythmic[i % 3],
                                    i < 3 ? 130 : 65);
            if (i < 16) {
                const size_t j = i - 6;
                return edgazeSpec(kEdgaze[j % 5], j < 5 ? 130 : 65);
            }
            if (i < 25)
                return kChips[i - 16]().design;
            if (i < kTotal)
                return spec::sampleDetectorSpec(30.0,
                                                i == 25 ? 130 : 65);
            return std::nullopt;
        },
        kTotal);
}

} // namespace camj
