#include "usecases/studies.h"

#include "spec/samples.h"
#include "usecases/edgaze.h"
#include "usecases/rhythmic.h"
#include "validation/chips.h"

namespace camj
{

std::vector<PaperStudy>
allPaperStudies()
{
    std::vector<PaperStudy> studies;
    auto add = [&](spec::DesignSpec spec) {
        studies.push_back({spec.name, std::move(spec)});
    };

    // Fig. 9a / Table 3: Rhythmic Pixel Regions placements. The
    // 3D-In-STT cell is absent here exactly as in the paper (the
    // metadata buffer is below the STT-RAM minimum).
    for (int nm : {130, 65}) {
        for (SensorVariant v : {SensorVariant::TwoDOff,
                                SensorVariant::TwoDIn,
                                SensorVariant::ThreeDIn})
            add(rhythmicSpec(v, nm));
    }

    // Fig. 9b / 10-13 / Table 3: every Ed-Gaze variant.
    for (int nm : {130, 65}) {
        for (EdgazeVariant v : {EdgazeVariant::TwoDOff,
                                EdgazeVariant::TwoDIn,
                                EdgazeVariant::ThreeDIn,
                                EdgazeVariant::ThreeDInStt,
                                EdgazeVariant::TwoDInMixed})
            add(edgazeSpec(v, nm));
    }

    // Table 2 / Fig. 7: the nine validation chips.
    for (ChipSpec &chip : allChipSpecs())
        add(std::move(chip.design));

    // The canonical sample detector at both paper CIS nodes.
    add(spec::sampleDetectorSpec(30.0, 130));
    add(spec::sampleDetectorSpec(30.0, 65));

    return studies;
}

std::vector<spec::DesignSpec>
allPaperStudySpecs()
{
    std::vector<spec::DesignSpec> specs;
    for (PaperStudy &s : allPaperStudies())
        specs.push_back(std::move(s.spec));
    return specs;
}

} // namespace camj
