/**
 * @file
 * The paper-study registry: every Sec. 5-6 design point of the paper
 * (all Rhythmic Pixel Regions variants, all Ed-Gaze variants, the
 * nine Table 2 validation chips) plus the canonical sample specs, as
 * one flat list of serializable DesignSpecs.
 *
 * This is the single source the golden-spec regression harness
 * (tests/golden), the property suites, the sweep tests, and the
 * perf_simulator bench iterate over — adding a study here enrolls it
 * in all of them at once.
 */

#ifndef CAMJ_USECASES_STUDIES_H
#define CAMJ_USECASES_STUDIES_H

#include <string>
#include <vector>

#include "spec/source.h"
#include "spec/spec.h"

namespace camj
{

/** One paper study as data. */
struct PaperStudy
{
    /** Stable key (= spec.name), used as the golden-file stem. */
    std::string key;
    spec::DesignSpec spec;
};

/**
 * Every paper study: 6 Rhythmic variants (2D-Off / 2D-In / 3D-In at
 * 130 and 65 nm), 10 Ed-Gaze variants (all five placements at both
 * nodes), the 9 validation chips, and 2 sample detector specs —
 * 27 serializable design points in deterministic order.
 */
std::vector<PaperStudy> allPaperStudies();

/** The bare specs of allPaperStudies(), ready for a SweepEngine
 *  batch. */
std::vector<spec::DesignSpec> allPaperStudySpecs();

/**
 * The registry as a lazy stream for SweepEngine::runStream(): study
 * specs are generated one at a time as workers pull them, so the
 * whole registry never has to exist as a vector. (Each pull builds
 * one study through its spec generator.)
 */
spec::GeneratorSpecSource paperStudySource();

} // namespace camj

#endif // CAMJ_USECASES_STUDIES_H
