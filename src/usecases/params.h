/**
 * @file
 * Calibration constants shared by the Sec. 6 use-case studies
 * (Rhythmic Pixel Regions and Ed-Gaze). All workload-level tunables
 * live here so the benches, tests, and examples agree on one set of
 * numbers.
 */

#ifndef CAMJ_USECASES_PARAMS_H
#define CAMJ_USECASES_PARAMS_H

#include <cstdint>

#include "common/units.h"

namespace camj::usecase
{

/** Host SoC process node [nm] (the paper's "L" node). */
constexpr int socNode = 22;

/** Candidate CIS nodes for the "H" axis of Fig. 9 / Table 3. */
constexpr int cisNode130 = 130;
constexpr int cisNode65 = 65;

// ----- Rhythmic Pixel Regions (Fig. 8a / 9a) -----

constexpr int64_t rhythmicWidth = 1280;
constexpr int64_t rhythmicHeight = 720;
constexpr double rhythmicFps = 30.0;
constexpr double rhythmicPitchUm = 3.0;
/** ROI encoding transmits ~50% of the full image. */
constexpr double rhythmicRoiFraction = 0.5;
/** ~7.4e6 arithmetic ops per frame => 8 ops per pixel. */
constexpr int64_t rhythmicOpsPerPixel = 8;
/** Compare & Sample lanes. */
constexpr int rhythmicLanes = 16;
/** Region-metadata SRAM (the paper's 2K memory). */
constexpr int64_t rhythmicRoiBufBytes = 2048;

// ----- Ed-Gaze (Fig. 8b / 9b / 10-13) -----

constexpr int64_t edgazeWidth = 640;
constexpr int64_t edgazeHeight = 400;
constexpr double edgazeFps = 30.0;
constexpr double edgazePitchUm = 3.0;
/** The gaze ROI is a small eye-region crop; in-sensor variants only
 *  transmit this crop (the paper's in-sensor Ed-Gaze MIPI bars are
 *  correspondingly small). */
constexpr int64_t edgazeRoiBytes = 16 * 1024;
/** Frame buffer for the previous downsampled frame [words]. */
constexpr int64_t edgazeFrameBufWords = 320 * 200;
/** DNN input/weight buffer (Fig. 8b). */
constexpr int64_t edgazeDnnBufBytes = 64 * 1024;
/** Systolic array dimension for the ROI DNN. */
constexpr int edgazeDnnDim = 16;
/** Mixed-signal study: all analog capacitors conservatively 100 fF. */
constexpr Capacitance edgazeMixedCap = 100e-15;

/**
 * Per-lane overhead of the Compare & Sample encoder on top of the
 * bare ALU anchor: compare, sample, region addressing and metadata
 * update around every pixel.
 */
constexpr double rhythmicLaneOverhead = 12.0;

/** Overhead of the simple Ed-Gaze downsample/subtract datapaths. */
constexpr double edgazeAluOverhead = 2.0;

/** The DNN buffer is gated outside the DNN activity window (only a
 *  small weight corner must stay retained). */
constexpr double dnnBufActiveFraction = 0.4;

/** Line buffers / FIFOs are gated outside the readout window. */
constexpr double streamBufActiveFraction = 0.5;

} // namespace camj::usecase

#endif // CAMJ_USECASES_PARAMS_H
