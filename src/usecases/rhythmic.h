/**
 * @file
 * Rhythmic Pixel Regions (Kodukula et al., ASPLOS'21) as a CamJ
 * workload: an ROI-based image encoder in front of the MIPI link
 * (the paper's Fig. 8a). The hardware variants explored in Fig. 9a
 * and Table 3 differ only in where the Compare & Sample accelerator
 * and its buffers live and in which process node they use.
 *
 * The study is defined as a DesignSpec generator (rhythmicSpec), so
 * every variant is a serializable document that can be saved, swept,
 * and diffed; buildRhythmic() is a thin materializing wrapper kept
 * for callers that want the imperative Design directly.
 */

#ifndef CAMJ_USECASES_RHYTHMIC_H
#define CAMJ_USECASES_RHYTHMIC_H

#include <memory>
#include <string>

#include "core/design.h"
#include "spec/spec.h"

namespace camj
{

/** Placement/stacking variants of Sec. 6.1-6.2. */
enum class SensorVariant
{
    /** Everything after the ADC runs on the host SoC. */
    TwoDOff,
    /** Single-die CIS executes the full pipeline. */
    TwoDIn,
    /** Two-die stack: pixel die + advanced-node compute die. */
    ThreeDIn,
    /** ThreeDIn with STT-RAM replacing the SRAM buffers. */
    ThreeDInStt,
};

/** Human-readable variant name ("2D-In", ...). */
const char *sensorVariantName(SensorVariant variant);

/**
 * The Rhythmic Pixel Regions design as a serializable spec.
 *
 * @param variant Placement variant. ThreeDInStt is rejected: the
 *        workload's 2 KB metadata buffer is below the STT-RAM
 *        model's 4 KB minimum, mirroring the paper's missing
 *        Rhythmic STT-RAM column.
 * @param sensor_nm CIS process node (the "H" node; 130 or 65 in the
 *        paper).
 * @param fps Frame-rate target; defaults to the paper's 30 fps.
 * @throws ConfigError for ThreeDInStt or invalid nodes.
 */
spec::DesignSpec rhythmicSpec(SensorVariant variant, int sensor_nm,
                              double fps = 0.0);

/** Materialize rhythmicSpec() onto the Design engine. */
std::shared_ptr<Design> buildRhythmic(SensorVariant variant,
                                      int sensor_nm,
                                      double fps = 0.0);

} // namespace camj

#endif // CAMJ_USECASES_RHYTHMIC_H
