#include "usecases/rhythmic.h"

#include "tech/process_node.h"
#include "tech/scaling.h"
#include "usecases/params.h"

namespace camj
{

const char *
sensorVariantName(SensorVariant variant)
{
    switch (variant) {
      case SensorVariant::TwoDOff: return "2D-Off";
      case SensorVariant::TwoDIn: return "2D-In";
      case SensorVariant::ThreeDIn: return "3D-In";
      case SensorVariant::ThreeDInStt: return "3D-In-STT";
    }
    return "?";
}

std::shared_ptr<Design>
buildRhythmic(SensorVariant variant, int sensor_nm, double fps)
{
    namespace uc = usecase;

    if (fps <= 0.0)
        fps = uc::rhythmicFps;

    if (variant == SensorVariant::ThreeDInStt) {
        fatal("buildRhythmic: the 2 KB region buffer is below the "
              "4 KB STT-RAM minimum (the paper has no Rhythmic "
              "STT-RAM result for the same reason)");
    }

    Layer digital_layer = Layer::Sensor;
    int digital_nm = sensor_nm;
    switch (variant) {
      case SensorVariant::TwoDOff:
        digital_layer = Layer::OffChip;
        digital_nm = uc::socNode;
        break;
      case SensorVariant::ThreeDIn:
        digital_layer = Layer::Compute;
        digital_nm = uc::socNode;
        break;
      default:
        break;
    }

    DesignParams dp;
    dp.name = std::string("rhythmic-") + sensorVariantName(variant) +
              "-" + std::to_string(sensor_nm) + "nm";
    dp.fps = fps;
    dp.digitalClock = 100e6;
    auto d = std::make_shared<Design>(dp);

    // ---- algorithm ----
    SwGraph &sw = d->sw();
    StageId in = sw.addStage({.name = "Input",
                              .op = StageOp::Input,
                              .outputSize = {uc::rhythmicWidth,
                                             uc::rhythmicHeight, 1},
                              .bitDepth = 8});
    StageId cs = sw.addStage(
        {.name = "CompareSample",
         .op = StageOp::CompareSample,
         .inputSize = {uc::rhythmicWidth, uc::rhythmicHeight, 1},
         .outputSize = {uc::rhythmicWidth, uc::rhythmicHeight, 1},
         .bitDepth = 8,
         .opsPerOutputOverride = uc::rhythmicOpsPerPixel});
    sw.connect(in, cs);
    // Per-region configuration state resident in the metadata buffer
    // (consulted for every pixel group by the encoder).
    sw.addStage({.name = "RegionState",
                 .op = StageOp::Input,
                 .outputSize = {256, 8, 1},
                 .bitDepth = 8});

    // ---- analog front-end (always on the sensor die) ----
    const NodeParams sensor_node = nodeParams(sensor_nm);
    ApsParams aps;
    aps.vdda = sensor_node.vdda;
    aps.columnLoadCap = 1.5e-12; // 720-row column line
    {
        AnalogArrayParams ap;
        ap.name = "PixelArray";
        ap.numComponents = {uc::rhythmicWidth, uc::rhythmicHeight, 1};
        ap.inputShape = {1, uc::rhythmicWidth, 1};
        ap.outputShape = {1, uc::rhythmicWidth, 1};
        ap.componentArea = uc::rhythmicPitchUm * uc::rhythmicPitchUm *
                           units::um2;
        d->addAnalogArray(AnalogArray(ap, makeAps4T(aps)),
                          AnalogRole::Sensing);
    }
    {
        AnalogArrayParams ap;
        ap.name = "AdcArray";
        ap.numComponents = {uc::rhythmicWidth, 1, 1};
        ap.inputShape = {1, uc::rhythmicWidth, 1};
        ap.outputShape = {1, uc::rhythmicWidth, 1};
        ap.componentArea = 1.0e-9;
        d->addAnalogArray(AnalogArray(ap, makeColumnAdc({.bits = 8})),
                          AnalogRole::Adc);
    }

    // ---- digital part (placement varies) ----
    d->addMemory(makeSramMemory("PixFifo", digital_layer,
                                MemoryKind::Fifo, 2 * uc::rhythmicWidth,
                                8, digital_nm,
                                uc::streamBufActiveFraction));
    d->addMemory(makeSramMemory("RoiBuf", digital_layer,
                                MemoryKind::DoubleBuffer,
                                uc::rhythmicRoiBufBytes / 2, 16,
                                digital_nm, 1.0));

    ComputeUnitParams cu;
    cu.name = "CompareSampleUnit";
    cu.layer = digital_layer;
    cu.inputPixelsPerCycle = {uc::rhythmicLanes, 1, 1};
    cu.outputPixelsPerCycle = {uc::rhythmicLanes, 1, 1};
    cu.energyPerCycle = uc::rhythmicLanes * aluEnergy16bit(digital_nm) *
                        uc::rhythmicLaneOverhead;
    cu.numStages = 4;
    cu.opsPerCycle = uc::rhythmicLanes * uc::rhythmicOpsPerPixel;
    d->addComputeUnit(ComputeUnit(cu));

    d->setAdcOutput("PixFifo");
    d->connectMemoryToUnit("PixFifo", "CompareSampleUnit");
    d->connectMemoryToUnit("RoiBuf", "CompareSampleUnit");

    d->setMipi(makeMipiCsi2());
    if (variant == SensorVariant::ThreeDIn)
        d->setTsv(makeMicroTsv());

    if (variant != SensorVariant::TwoDOff) {
        // ROI encoding halves the transmitted volume.
        int64_t full = uc::rhythmicWidth * uc::rhythmicHeight;
        d->setPipelineOutputBytes(static_cast<int64_t>(
            static_cast<double>(full) * uc::rhythmicRoiFraction));
    }

    Mapping &m = d->mapping();
    m.map("Input", "PixelArray");
    m.map("CompareSample", "CompareSampleUnit");
    m.map("RegionState", "RoiBuf");
    return d;
}

} // namespace camj
