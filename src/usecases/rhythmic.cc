#include "usecases/rhythmic.h"

#include "spec/builder.h"
#include "tech/process_node.h"
#include "tech/scaling.h"
#include "usecases/params.h"

namespace camj
{

const char *
sensorVariantName(SensorVariant variant)
{
    switch (variant) {
      case SensorVariant::TwoDOff: return "2D-Off";
      case SensorVariant::TwoDIn: return "2D-In";
      case SensorVariant::ThreeDIn: return "3D-In";
      case SensorVariant::ThreeDInStt: return "3D-In-STT";
    }
    return "?";
}

spec::DesignSpec
rhythmicSpec(SensorVariant variant, int sensor_nm, double fps)
{
    namespace uc = usecase;

    if (fps <= 0.0)
        fps = uc::rhythmicFps;

    if (variant == SensorVariant::ThreeDInStt) {
        fatal("rhythmicSpec: the 2 KB region buffer is below the "
              "4 KB STT-RAM minimum (the paper has no Rhythmic "
              "STT-RAM result for the same reason)");
    }

    Layer digital_layer = Layer::Sensor;
    int digital_nm = sensor_nm;
    switch (variant) {
      case SensorVariant::TwoDOff:
        digital_layer = Layer::OffChip;
        digital_nm = uc::socNode;
        break;
      case SensorVariant::ThreeDIn:
        digital_layer = Layer::Compute;
        digital_nm = uc::socNode;
        break;
      default:
        break;
    }

    // ---- analog front-end components (always on the sensor die) ----
    const NodeParams sensor_node = nodeParams(sensor_nm);
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps.vdda = sensor_node.vdda;
    pixel.aps.columnLoadCap = 1.5e-12; // 720-row column line
    spec::ComponentSpec adc;
    adc.kind = spec::ComponentKind::ColumnAdc;
    adc.adc = {.bits = 8};

    ComputeUnitParams cu;
    cu.name = "CompareSampleUnit";
    cu.layer = digital_layer;
    cu.inputPixelsPerCycle = {uc::rhythmicLanes, 1, 1};
    cu.outputPixelsPerCycle = {uc::rhythmicLanes, 1, 1};
    cu.energyPerCycle = uc::rhythmicLanes * aluEnergy16bit(digital_nm) *
                        uc::rhythmicLaneOverhead;
    cu.numStages = 4;
    cu.opsPerCycle = uc::rhythmicLanes * uc::rhythmicOpsPerPixel;

    spec::DesignBuilder b(std::string("rhythmic-") +
                          sensorVariantName(variant) + "-" +
                          std::to_string(sensor_nm) + "nm");
    b.fps(fps)
        .digitalClock(100e6)
        // ---- algorithm ----
        .inputStage("Input", {uc::rhythmicWidth, uc::rhythmicHeight, 1})
        .stage({.name = "CompareSample",
                .op = StageOp::CompareSample,
                .inputSize = {uc::rhythmicWidth, uc::rhythmicHeight, 1},
                .outputSize = {uc::rhythmicWidth, uc::rhythmicHeight, 1},
                .bitDepth = 8,
                .opsPerOutputOverride = uc::rhythmicOpsPerPixel},
               {"Input"})
        // Per-region configuration state resident in the metadata
        // buffer (consulted for every pixel group by the encoder).
        .inputStage("RegionState", {256, 8, 1})
        // ---- analog chain ----
        .analogArray({.name = "PixelArray",
                      .role = AnalogRole::Sensing,
                      .numComponents = {uc::rhythmicWidth,
                                        uc::rhythmicHeight, 1},
                      .inputShape = {1, uc::rhythmicWidth, 1},
                      .outputShape = {1, uc::rhythmicWidth, 1},
                      .componentArea = uc::rhythmicPitchUm *
                                       uc::rhythmicPitchUm * units::um2,
                      .component = pixel})
        .analogArray({.name = "AdcArray",
                      .role = AnalogRole::Adc,
                      .numComponents = {uc::rhythmicWidth, 1, 1},
                      .inputShape = {1, uc::rhythmicWidth, 1},
                      .outputShape = {1, uc::rhythmicWidth, 1},
                      .componentArea = 1.0e-9,
                      .component = adc})
        // ---- digital part (placement varies) ----
        .sram("PixFifo", digital_layer, MemoryKind::Fifo,
              2 * uc::rhythmicWidth, 8, digital_nm,
              uc::streamBufActiveFraction)
        .sram("RoiBuf", digital_layer, MemoryKind::DoubleBuffer,
              uc::rhythmicRoiBufBytes / 2, 16, digital_nm, 1.0)
        .computeUnit(cu, {"PixFifo", "RoiBuf"})
        .adcOutput("PixFifo")
        .mipi();

    if (variant == SensorVariant::ThreeDIn)
        b.tsv();

    if (variant != SensorVariant::TwoDOff) {
        // ROI encoding halves the transmitted volume.
        int64_t full = uc::rhythmicWidth * uc::rhythmicHeight;
        b.pipelineOutputBytes(static_cast<int64_t>(
            static_cast<double>(full) * uc::rhythmicRoiFraction));
    }

    b.map("Input", "PixelArray")
        .map("CompareSample", "CompareSampleUnit")
        .map("RegionState", "RoiBuf");
    return b.spec();
}

std::shared_ptr<Design>
buildRhythmic(SensorVariant variant, int sensor_nm, double fps)
{
    return std::make_shared<Design>(
        rhythmicSpec(variant, sensor_nm, fps).materialize());
}

} // namespace camj
