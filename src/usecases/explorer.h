/**
 * @file
 * Compatibility shim: the breakdown helpers the Fig. 9 / 11-13 /
 * Table 3 benches historically included from here now live in the
 * exploration subsystem (src/explore/breakdown.h), where SweepResult
 * builds on them. Include that header directly in new code.
 */

#ifndef CAMJ_USECASES_EXPLORER_H
#define CAMJ_USECASES_EXPLORER_H

#include "explore/breakdown.h"

#endif // CAMJ_USECASES_EXPLORER_H
