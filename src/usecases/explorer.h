/**
 * @file
 * Exploration helpers shared by the Fig. 9 / Fig. 11-13 / Table 3
 * benches: category breakdown rows, table formatting, and the power-
 * density figure of merit in the paper's mW/mm^2 units.
 */

#ifndef CAMJ_USECASES_EXPLORER_H
#define CAMJ_USECASES_EXPLORER_H

#include <string>
#include <vector>

#include "core/report.h"

namespace camj
{

/** One config's category breakdown in microjoules per frame. */
struct BreakdownRow
{
    std::string label;
    double senUJ = 0.0;
    double compAUJ = 0.0;
    double memAUJ = 0.0;
    double compDUJ = 0.0;
    double memDUJ = 0.0;
    double mipiUJ = 0.0;
    double tsvUJ = 0.0;
    double totalUJ = 0.0;
};

/** Fold a report into a breakdown row. */
BreakdownRow breakdownOf(const std::string &label,
                         const EnergyReport &report);

/** Render rows as an aligned text table (the Fig. 9/11 series). */
std::string formatBreakdownTable(const std::vector<BreakdownRow> &rows);

/** Sec. 6.2 power density in the paper's unit [mW/mm^2]. */
double powerDensityMwPerMm2(const EnergyReport &report);

} // namespace camj

#endif // CAMJ_USECASES_EXPLORER_H
