#include "usecases/params.h"

// All use-case parameters are compile-time constants; this file
// exists so the module shows up as a distinct translation unit and
// can grow runtime-tunable knobs without touching the build.
