#include "analog/afa.h"

#include <cmath>

#include "common/logging.h"

namespace camj
{

AnalogArray::AnalogArray(AnalogArrayParams params, AComponent component)
    : params_(std::move(params)), component_(std::move(component))
{
    if (params_.name.empty())
        fatal("AnalogArray: empty name");
    if (!params_.numComponents.valid())
        fatal("AnalogArray %s: invalid component count %s",
              params_.name.c_str(), params_.numComponents.str().c_str());
    if (!params_.inputShape.valid() || !params_.outputShape.valid())
        fatal("AnalogArray %s: invalid input/output shape",
              params_.name.c_str());
    if (params_.componentArea < 0.0)
        fatal("AnalogArray %s: negative component area",
              params_.name.c_str());
    if (component_.numCells() == 0)
        fatal("AnalogArray %s: component '%s' has no cells",
              params_.name.c_str(), component_.name().c_str());
}

double
AnalogArray::accessesPerComponent(int64_t ops) const
{
    if (ops < 0)
        fatal("AnalogArray %s: negative op count", params_.name.c_str());
    return static_cast<double>(ops) /
           static_cast<double>(params_.numComponents.count());
}

AnalogArrayEnergy
AnalogArray::energyPerFrame(int64_t ops, Time unit_time,
                            Time frame_time) const
{
    if (ops < 0)
        fatal("AnalogArray %s: negative op count", params_.name.c_str());
    if (unit_time <= 0.0 || frame_time <= 0.0)
        fatal("AnalogArray %s: non-positive time budget",
              params_.name.c_str());

    AnalogArrayEnergy result;
    result.accessesPerComponent = accessesPerComponent(ops);

    // Each component performs its accesses sequentially within the
    // array's time slot; one op gets slot / ceil(accesses).
    double serial_ops = std::max(1.0,
                                 std::ceil(result.accessesPerComponent));
    result.opDelay = unit_time / serial_ops;

    ComponentTiming timing;
    timing.opDelay = result.opDelay;
    timing.frameTime = frame_time;

    if (ops > 0) {
        result.perOpPart = component_.energyPerOp(timing) *
                           static_cast<double>(ops);
    }
    result.perFramePart =
        component_.energyPerFramePerComponent(timing) *
        static_cast<double>(params_.numComponents.count());
    result.total = result.perOpPart + result.perFramePart;
    return result;
}

Area
AnalogArray::area() const
{
    return params_.componentArea *
           static_cast<double>(params_.numComponents.count());
}

} // namespace camj
