/**
 * @file
 * A-Components: analog functional components assembled from A-Cells
 * (Sec. 4.2, Eq. 4 and Eq. 13), plus factory functions for the default
 * component library of Table 1 (pixels, ADC, MAC, comparator, analog
 * memories, ...). The cell-level implementations follow the classic
 * designs the paper surveys; expert users can build custom components
 * by adding cells directly.
 */

#ifndef CAMJ_ANALOG_ACOMPONENT_H
#define CAMJ_ANALOG_ACOMPONENT_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analog/acell.h"
#include "analog/domain.h"

namespace camj
{

/** How a cell's static-bias window relates to the component timing. */
enum class TimingScope
{
    /** Biased during its own slot of the evenly-split component delay;
     *  static window per Eq. 11 (remaining time in the component). */
    SelfSlot,
    /** Biased for the component's full per-op delay. */
    ComponentSpan,
    /** Biased for the entire frame, once per frame per component
     *  (e.g. the hold buffer of an active analog frame memory). */
    Frame,
};

/** Timing context handed to a component by its array. */
struct ComponentTiming
{
    /** Delay budget of one operation of this component [s]. */
    Time opDelay = 0.0;
    /** Frame time 1/FPS [s], for Frame-scoped cells. */
    Time frameTime = 0.0;
};

/** A cell instance inside a component, with Eq. 13 access counts. */
struct CellInstance
{
    std::shared_ptr<const ACell> cell;
    /** Spatial replication inside the component. */
    int spatialCount = 1;
    /** Temporal uses per component operation (2 for CDS readout). */
    int temporalCount = 1;
    TimingScope scope = TimingScope::SelfSlot;
};

/**
 * An analog functional component: an ordered chain of A-Cells the
 * signal flows through. Cheap to copy (cells are shared immutable).
 */
class AComponent
{
  public:
    AComponent(std::string name, SignalDomain input, SignalDomain output);

    /**
     * Append a cell to the critical path.
     *
     * @param spatial Spatial count (>= 1).
     * @param temporal Temporal count (>= 1).
     * @throws ConfigError on non-positive counts or null cell.
     */
    void addCell(std::shared_ptr<const ACell> cell, int spatial = 1,
                 int temporal = 1, TimingScope scope = TimingScope::SelfSlot);

    const std::string &name() const { return name_; }
    SignalDomain inputDomain() const { return input_; }
    SignalDomain outputDomain() const { return output_; }
    int numCells() const { return static_cast<int>(cells_.size()); }
    const std::vector<CellInstance> &cells() const { return cells_; }

    /**
     * Energy of one operation (Eq. 4): SelfSlot/ComponentSpan cells
     * only. The per-op delay is split evenly across the critical path
     * (Eq. 11: cell k of N gets delay T/N and static window
     * T - (k-1) * T/N).
     *
     * @throws ConfigError if opDelay <= 0 while a cell needs timing.
     */
    Energy energyPerOp(const ComponentTiming &timing) const;

    /**
     * Per-frame energy of Frame-scoped cells of ONE component
     * instance (counted once per frame, not per op).
     */
    Energy energyPerFramePerComponent(const ComponentTiming &timing) const;

    /** Per-cell energy contributions of one op, for reports. */
    std::vector<std::pair<std::string, Energy>>
    cellBreakdown(const ComponentTiming &timing) const;

  private:
    std::string name_;
    SignalDomain input_;
    SignalDomain output_;
    std::vector<CellInstance> cells_;

    CellTiming timingFor(size_t idx, const ComponentTiming &t) const;
};

// ---------------------------------------------------------------------
// Default component library (Table 1). All parameters have surveyed
// defaults; override fields for custom designs.
// ---------------------------------------------------------------------

/** Active Pixel Sensor parameters. */
struct ApsParams
{
    /** Photodiode capacitance [F]. */
    Capacitance photodiodeCap = 5e-15;
    /** Floating-diffusion capacitance [F] (4T only). */
    Capacitance floatingDiffusionCap = 2e-15;
    /** Column/bitline load the source follower drives [F]. */
    Capacitance columnLoadCap = 1.0e-12;
    /** Pixel output swing [V]. */
    Voltage pixelSwing = 1.0;
    /** Analog supply [V]. */
    Voltage vdda = 2.5;
    /** Read out twice for correlated double sampling (4T default). */
    bool correlatedDoubleSampling = true;
    /** Photodiodes sharing the readout (charge-binning cluster). */
    int pixelsPerComponent = 1;
};

/** 4T APS: photodiode + floating diffusion + source follower. */
AComponent makeAps4T(const ApsParams &params = {});

/** 3T APS: photodiode + source follower, no CDS. */
AComponent makeAps3T(ApsParams params = {});

/** Digital Pixel Sensor: photodiode + in-pixel ADC. */
AComponent makeDps(int bits, const ApsParams &params = {});

/** Pulse-width-modulation pixel: photodiode + comparator, time out. */
AComponent makePwmPixel(const ApsParams &params = {});

/** Column ADC parameters. */
struct AdcParams
{
    int bits = 10;
    /** Optional fixed energy per conversion [J]; 0 = FoM survey. */
    Energy energyPerConversionOverride = 0.0;
};

/** Column/chip ADC: voltage in, digital out. */
AComponent makeColumnAdc(const AdcParams &params = {});

/** Switched-capacitor compute parameters (MAC, add, scale, abs). */
struct SwitchedCapParams
{
    /** Unit capacitor [F]; 0 = size from Eq. 6 for `bits`. */
    Capacitance unitCap = 0.0;
    /** Number of unit capacitors in the array. */
    int numCaps = 8;
    /** Signal swing [V]. */
    Voltage vswing = 1.0;
    /** Analog supply [V]. */
    Voltage vdda = 2.5;
    /** Computation precision for noise-driven cap sizing. */
    int bits = 8;
    /** Include an active opamp (false = passive charge sharing). */
    bool active = true;
    /** Opamp closed-loop gain. */
    double gain = 1.0;
    /** Opamp gm/Id factor. */
    double gmOverId = 15.0;
};

/** Switched-capacitor multiply-accumulate unit. */
AComponent makeSwitchedCapMac(const SwitchedCapParams &params = {});

/** Charge-sharing adder (passive unless params.active). */
AComponent makeChargeAdder(SwitchedCapParams params = {});

/** Charge-redistribution scaler. */
AComponent makeScaler(SwitchedCapParams params = {});

/** Absolute-value unit (switched-cap with opamp). */
AComponent makeAbsUnit(SwitchedCapParams params = {});

/** Analog maximum over n inputs (comparator tree). */
AComponent makeMaxUnit(int num_inputs);

/** Standalone comparator (1-bit non-linear cell). */
AComponent makeComparator(Energy energy_override = 0.0);

/** Logarithmic unit (subthreshold transconductor). */
AComponent makeLogUnit(Capacitance load = 50e-15, Voltage vdda = 2.5);

/** Analog memory parameters. */
struct AnalogMemoryParams
{
    /** Storage precision for noise-driven cap sizing. */
    int bits = 8;
    /** Stored swing [V]. */
    Voltage vswing = 1.0;
    /** Analog supply [V]. */
    Voltage vdda = 2.5;
    /** Storage cap [F]; 0 = size from Eq. 6. */
    Capacitance storageCap = 0.0;
    /** Readout buffer load [F] (active memory). */
    Capacitance readoutLoadCap = 0.5e-12;
    /** Average reads of each stored value per frame. */
    int readsPerValue = 1;
};

/** Passive sample-and-hold memory: write charges the cap, read
 *  charge-shares onto the consumer. */
AComponent makePassiveAnalogMemory(const AnalogMemoryParams &params = {});

/** Active analog memory in the 4T-APS style of the paper's Fig. 10:
 *  storage cap plus source-follower readout per read. */
AComponent makeActiveAnalogMemory(const AnalogMemoryParams &params = {});

// ---------------------------------------------------------------------
// Domain-conversion components: what the pre-simulation domain check
// asks designers to insert between mismatched arrays (Sec. 3.3).
// ---------------------------------------------------------------------

/** Domain-converter parameters. */
struct ConverterParams
{
    /** Conversion/sampling capacitor [F]; 0 = size from Eq. 6. */
    Capacitance cap = 0.0;
    /** Target precision for noise-driven sizing. */
    int bits = 8;
    /** Signal swing [V]. */
    Voltage vswing = 1.0;
    /** Analog supply [V]. */
    Voltage vdda = 2.5;
    /** Active buffer gm/Id factor. */
    double gmOverId = 15.0;
};

/** Charge-to-voltage converter: integration cap + amplifier (the
 *  conversion the checker names for charge -> voltage edges). */
AComponent makeChargeToVoltage(const ConverterParams &params = {});

/** Current-to-voltage converter (transimpedance stage). */
AComponent makeCurrentToVoltage(const ConverterParams &params = {});

/** Time-to-voltage converter (ramp + sample, for PWM outputs). */
AComponent makeTimeToVoltage(const ConverterParams &params = {});

/** Sample-and-hold buffer: matches producer/consumer throughput
 *  (the "analog buffer" the throughput check requests). */
AComponent makeSampleHold(const ConverterParams &params = {});

/** Dynamic-vision (DVS) event pixel: photodiode + asynchronous delta
 *  modulator + 1-bit event comparator (Yang et al., JSSC'15). Output
 *  is a digital event; map event-generation stages onto it. */
AComponent makeDvsPixel(const ApsParams &params = {});

} // namespace camj

#endif // CAMJ_ANALOG_ACOMPONENT_H
