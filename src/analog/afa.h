/**
 * @file
 * Analog Functional Arrays (AFA): arrays of identical A-Components
 * (Sec. 3.3 "Analog Units"). Implements the Eq. 3 access-count model
 * (ops mapped to the array divided evenly over its components) and the
 * per-frame energy aggregation over component accesses.
 */

#ifndef CAMJ_ANALOG_AFA_H
#define CAMJ_ANALOG_AFA_H

#include <cstdint>
#include <string>
#include <vector>

#include "analog/acomponent.h"
#include "common/layer.h"
#include "common/shape.h"

namespace camj
{

/** Construction parameters of an analog array. */
struct AnalogArrayParams
{
    std::string name;
    Layer layer = Layer::Sensor;
    /** Array dimensions in components (e.g. {16, 16} pixels). */
    Shape numComponents = {1, 1, 1};
    /** Signals consumed per unit step (throughput declaration). */
    Shape inputShape = {1, 1, 1};
    /** Signals produced per unit step. */
    Shape outputShape = {1, 1, 1};
    /** Estimated silicon area of one component [m^2] (0 = unknown);
     *  used by the power-density footprint model. */
    Area componentArea = 0.0;
};

/** Per-frame energy result of one analog array. */
struct AnalogArrayEnergy
{
    /** Total energy this frame [J]. */
    Energy total = 0.0;
    /** Per-op (access-scoped) part. */
    Energy perOpPart = 0.0;
    /** Frame-scoped part (e.g. memory hold buffers). */
    Energy perFramePart = 0.0;
    /** Accesses per component (Eq. 3). */
    double accessesPerComponent = 0.0;
    /** Delay allocated to one component operation [s]. */
    Time opDelay = 0.0;
};

/**
 * An array of identical A-Components plus the Eq. 3 access-count
 * logic. The unit's per-frame time budget (T_A from the Sec. 4.1
 * delay estimation) is supplied by the core framework.
 */
class AnalogArray
{
  public:
    /**
     * @throws ConfigError on invalid shapes or an empty name.
     */
    AnalogArray(AnalogArrayParams params, AComponent component);

    const std::string &name() const { return params_.name; }
    Layer layer() const { return params_.layer; }
    const Shape &numComponents() const { return params_.numComponents; }
    const Shape &inputShape() const { return params_.inputShape; }
    const Shape &outputShape() const { return params_.outputShape; }
    const AComponent &component() const { return component_; }

    SignalDomain inputDomain() const { return component_.inputDomain(); }
    SignalDomain outputDomain() const { return component_.outputDomain(); }

    /**
     * Accesses per component for @p ops operations mapped to this
     * array (Eq. 3).
     *
     * @throws ConfigError if ops is negative.
     */
    double accessesPerComponent(int64_t ops) const;

    /**
     * Per-frame energy when @p ops operations run on this array
     * within time budget @p unit_time (the array's T_A slot) out of a
     * frame of @p frame_time seconds.
     *
     * @throws ConfigError on non-positive times or negative ops.
     */
    AnalogArrayEnergy energyPerFrame(int64_t ops, Time unit_time,
                                     Time frame_time) const;

    /** Total array area [m^2]; 0 when unknown. */
    Area area() const;

  private:
    AnalogArrayParams params_;
    AComponent component_;
};

} // namespace camj

#endif // CAMJ_ANALOG_AFA_H
