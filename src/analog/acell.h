/**
 * @file
 * A-Cells: the three energy classes of analog circuit cells (Sec. 4.2).
 *
 *   1. Dynamic cells consume charge/discharge energy of their
 *      capacitance nodes (Eq. 5), with thermal-noise-driven capacitor
 *      sizing (Eq. 6).
 *   2. Static-biased cells integrate a bias current over their active
 *      time (Eq. 7), with the bias either directly driving the load
 *      (Eq. 8-9) or set by the gm/Id method (Eq. 10).
 *   3. Non-linear cells (ADCs, comparators) are estimated from the
 *      Walden FoM survey (Eq. 12).
 *
 * Cells receive their timing (per-cell delay and static-bias window)
 * from the enclosing A-Component, which splits the component delay
 * evenly across its critical path (Eq. 11).
 */

#ifndef CAMJ_ANALOG_ACELL_H
#define CAMJ_ANALOG_ACELL_H

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace camj
{

/** Timing context handed to a cell by its component. */
struct CellTiming
{
    /** This cell's allocated settling delay [s]. */
    Time delay = 0.0;
    /** Window during which the cell is statically biased [s]. */
    Time staticTime = 0.0;
};

/** Base class of all analog cells. */
class ACell
{
  public:
    explicit ACell(std::string name) : name_(std::move(name)) {}
    virtual ~ACell() = default;

    const std::string &name() const { return name_; }

    /**
     * Energy of one access under the given timing [J].
     *
     * @throws ConfigError when the timing is inconsistent with the
     *         cell's requirements (e.g. zero delay for a biased cell).
     */
    virtual Energy energyPerAccess(const CellTiming &timing) const = 0;

  private:
    std::string name_;
};

/** One capacitance node of a dynamic cell: (C, voltage swing). */
struct CapNode
{
    Capacitance capacitance = 0.0;
    Voltage voltageSwing = 0.0;
};

/**
 * Dynamic A-Cell (Eq. 5): E = sum_i C_i * Vvs_i^2.
 * Examples: capacitive DACs, passive analog memory, charge-sharing
 * cap arrays.
 */
class DynamicCell : public ACell
{
  public:
    /**
     * @param nodes Capacitance nodes; each must have positive C and
     *        non-negative swing.
     * @throws ConfigError on invalid nodes.
     */
    DynamicCell(std::string name, std::vector<CapNode> nodes);

    Energy energyPerAccess(const CellTiming &timing) const override;

    /** Total capacitance across nodes [F]. */
    Capacitance totalCapacitance() const;

    /**
     * Smallest capacitance meeting the Eq. 6 noise constraint
     * 3 * sigma_thermal < LSB / 2 with sigma = sqrt(kT/C):
     *
     *   C  >  kT * (6 * 2^bits / Vvs)^2
     *
     * @param bits Data resolution; must be in [1, 16].
     * @param vswing Full-scale voltage swing; must be positive.
     * @param temperature_k Absolute temperature, default 300 K.
     * @throws ConfigError on invalid arguments.
     */
    static Capacitance capForResolution(int bits, Voltage vswing,
                                        double temperature_k = 300.0);

  private:
    std::vector<CapNode> nodes_;
};

/** Bias-current estimation mode for static-biased cells. */
enum class BiasMode
{
    /** Eq. 8-9: the bias charges the load directly;
     *  E = Cload * Vvs * VDDA, independent of time. */
    DirectDrive,
    /** Eq. 10: gm/Id sizing; Ibias = 2*pi*Cload*GBW / (gm/Id) with
     *  GBW = gain / delay, then E = VDDA * Ibias * t_static (Eq. 7). */
    GmOverId,
};

/** Parameters of a static-biased cell. */
struct StaticBiasParams
{
    /** Load capacitance [F]; must be positive. */
    Capacitance loadCapacitance = 0.0;
    /** Output voltage swing [V]; positive. */
    Voltage voltageSwing = 1.0;
    /** Analog supply [V]; positive. */
    Voltage vdda = 2.5;
    /** Closed-loop gain for GBW = gain/delay (GmOverId mode). */
    double gain = 1.0;
    /** gm/Id inversion-level factor, typically 10-20 (GmOverId). */
    double gmOverId = 15.0;
    /**
     * Fixed bandwidth [Hz] for GmOverId cells whose speed is set by
     * an external requirement rather than the allocated delay — the
     * paper's "OpAmp active over a fixed duration, e.g. when used
     * for an analog frame buffer". 0 derives GBW from the delay.
     */
    Frequency fixedBandwidth = 0.0;
    BiasMode mode = BiasMode::DirectDrive;
};

/**
 * Static-biased A-Cell (Eq. 7-10). Examples: pixel source followers
 * (DirectDrive), opamps in active analog memories and integrators
 * (GmOverId).
 */
class StaticBiasedCell : public ACell
{
  public:
    /** @throws ConfigError on non-positive electrical parameters. */
    StaticBiasedCell(std::string name, StaticBiasParams params);

    Energy energyPerAccess(const CellTiming &timing) const override;

    /**
     * Bias current under the given timing [A]. DirectDrive uses
     * Eq. 8 (needs staticTime > 0); GmOverId uses Eq. 10 (needs
     * delay > 0).
     */
    Current biasCurrent(const CellTiming &timing) const;

    const StaticBiasParams &params() const { return params_; }

  private:
    StaticBiasParams params_;
};

/**
 * Non-linear A-Cell (Eq. 12): ADCs and comparators, estimated from
 * the Walden FoM survey at a sampling rate of 1/delay. Expert users
 * may override with a fixed per-conversion energy.
 */
class NonLinearCell : public ACell
{
  public:
    /**
     * @param bits Resolution in [1, 16]; a comparator is 1 bit.
     * @param energy_override If positive, a custom per-conversion
     *        energy that bypasses the FoM survey.
     * @throws ConfigError on invalid resolution.
     */
    NonLinearCell(std::string name, int bits,
                  Energy energy_override = 0.0);

    Energy energyPerAccess(const CellTiming &timing) const override;

    int bits() const { return bits_; }

  private:
    int bits_;
    Energy energyOverride_;
};

} // namespace camj

#endif // CAMJ_ANALOG_ACELL_H
