/**
 * @file
 * Signal domains for analog functional arrays.
 *
 * The paper's pre-simulation viability check requires the output
 * domain of a producer AFA to match the input domain of its consumer
 * (Sec. 3.3); an ADC is the only legal crossing into Digital.
 */

#ifndef CAMJ_ANALOG_DOMAIN_H
#define CAMJ_ANALOG_DOMAIN_H

namespace camj
{

/** Physical representation of a signal between analog units. */
enum class SignalDomain
{
    Optical,
    Charge,
    Voltage,
    Current,
    Time,
    Digital,
};

/** Human-readable domain name. */
const char *signalDomainName(SignalDomain d);

} // namespace camj

#endif // CAMJ_ANALOG_DOMAIN_H
