/**
 * @file
 * Walden figure-of-merit survey model for ADCs and comparators.
 *
 * The paper estimates non-linear A-Cells (ADCs, comparators) from the
 * Murmann ADC survey: "given the ADC sampling rate we use the median
 * energy-per-conversion at that sampling rate" (Eq. 12). The survey is
 * not shippable offline, so this module encodes the survey's median
 * Walden FoM [J per conversion-step] as a piecewise log-log curve with
 * the well-known shape: roughly flat tens of fJ/step through the
 * kS/s-100 MS/s range, degrading at GS/s speeds.
 */

#ifndef CAMJ_ANALOG_ADC_FOM_H
#define CAMJ_ANALOG_ADC_FOM_H

#include "common/units.h"

namespace camj
{

/**
 * Median Walden FoM at a sampling rate [J per conversion-step].
 *
 * @param sample_rate Samples per second; must be in [1, 1e12]. Values
 *        outside the surveyed range [1e2, 1e11] are clamped to the
 *        nearest surveyed point.
 * @throws ConfigError for non-positive or absurd rates.
 */
Energy waldenFomMedian(Frequency sample_rate);

/**
 * Median energy of one full conversion of a @p bits ADC (Eq. 12):
 * FoM(rate) * 2^bits.
 *
 * @param bits Resolution in [1, 16]. A comparator is bits == 1.
 * @throws ConfigError on out-of-range resolution or rate.
 */
Energy adcEnergyPerConversion(int bits, Frequency sample_rate);

} // namespace camj

#endif // CAMJ_ANALOG_ADC_FOM_H
