#include "analog/adc_fom.h"

#include <array>
#include <cmath>

#include "common/logging.h"

namespace camj
{

namespace
{

struct FomPoint { Frequency rate; Energy fomPerStep; };

// Median Walden FoM per conversion-step, reconstructed from the shape
// of the Murmann survey (see DESIGN.md Sec. 3): sub-MS/s designs are
// dominated by fixed overheads, the sweet spot sits around 1-100 MS/s,
// and GS/s designs pay steeply for speed.
constexpr std::array<FomPoint, 8> fomTable = {{
    { 1e2, 120e-15 },
    { 1e4, 55e-15 },
    { 1e6, 30e-15 },
    { 1e7, 28e-15 },
    { 1e8, 40e-15 },
    { 1e9, 110e-15 },
    { 1e10, 500e-15 },
    { 1e11, 2.5e-12 },
}};

} // namespace

Energy
waldenFomMedian(Frequency sample_rate)
{
    if (sample_rate <= 0.0 || sample_rate > 1e12)
        fatal("waldenFomMedian: sampling rate %g S/s outside (0, 1e12]",
              sample_rate);

    if (sample_rate <= fomTable.front().rate)
        return fomTable.front().fomPerStep;
    if (sample_rate >= fomTable.back().rate)
        return fomTable.back().fomPerStep;

    for (size_t i = 1; i < fomTable.size(); ++i) {
        if (sample_rate <= fomTable[i].rate) {
            const FomPoint &lo = fomTable[i - 1];
            const FomPoint &hi = fomTable[i];
            double t = (std::log(sample_rate) - std::log(lo.rate)) /
                       (std::log(hi.rate) - std::log(lo.rate));
            return std::exp(std::log(lo.fomPerStep) +
                            t * (std::log(hi.fomPerStep) -
                                 std::log(lo.fomPerStep)));
        }
    }
    panic("waldenFomMedian: table scan fell through for %g", sample_rate);
}

Energy
adcEnergyPerConversion(int bits, Frequency sample_rate)
{
    if (bits < 1 || bits > 16)
        fatal("adcEnergyPerConversion: resolution %d outside [1, 16]",
              bits);
    return waldenFomMedian(sample_rate) * std::pow(2.0, bits);
}

} // namespace camj
