#include "analog/acomponent.h"

#include "common/logging.h"

namespace camj
{

const char *
signalDomainName(SignalDomain d)
{
    switch (d) {
      case SignalDomain::Optical: return "optical";
      case SignalDomain::Charge: return "charge";
      case SignalDomain::Voltage: return "voltage";
      case SignalDomain::Current: return "current";
      case SignalDomain::Time: return "time";
      case SignalDomain::Digital: return "digital";
    }
    return "?";
}

AComponent::AComponent(std::string name, SignalDomain input,
                       SignalDomain output)
    : name_(std::move(name)), input_(input), output_(output)
{
    if (name_.empty())
        fatal("AComponent: empty name");
}

void
AComponent::addCell(std::shared_ptr<const ACell> cell, int spatial,
                    int temporal, TimingScope scope)
{
    if (!cell)
        fatal("AComponent %s: null cell", name_.c_str());
    if (spatial < 1 || temporal < 1)
        fatal("AComponent %s: cell %s counts must be >= 1 (got %d, %d)",
              name_.c_str(), cell->name().c_str(), spatial, temporal);
    cells_.push_back({std::move(cell), spatial, temporal, scope});
}

CellTiming
AComponent::timingFor(size_t idx, const ComponentTiming &t) const
{
    const size_t n = cells_.size();
    CellTiming ct;
    // Eq. 11 with even allocation: every cell settles in T/N; cell k
    // stays biased from its start to the end of the op window.
    ct.delay = t.opDelay / static_cast<double>(n);
    switch (cells_[idx].scope) {
      case TimingScope::SelfSlot:
        ct.staticTime = t.opDelay -
                        static_cast<double>(idx) * ct.delay;
        break;
      case TimingScope::ComponentSpan:
        ct.staticTime = t.opDelay;
        break;
      case TimingScope::Frame:
        ct.staticTime = t.frameTime;
        break;
    }
    return ct;
}

Energy
AComponent::energyPerOp(const ComponentTiming &timing) const
{
    if (cells_.empty())
        fatal("AComponent %s: no cells", name_.c_str());
    Energy e = 0.0;
    for (size_t i = 0; i < cells_.size(); ++i) {
        const CellInstance &ci = cells_[i];
        if (ci.scope == TimingScope::Frame)
            continue; // counted per frame, not per op
        e += ci.cell->energyPerAccess(timingFor(i, timing)) *
             ci.spatialCount * ci.temporalCount;
    }
    return e;
}

Energy
AComponent::energyPerFramePerComponent(const ComponentTiming &timing) const
{
    Energy e = 0.0;
    for (size_t i = 0; i < cells_.size(); ++i) {
        const CellInstance &ci = cells_[i];
        if (ci.scope != TimingScope::Frame)
            continue;
        e += ci.cell->energyPerAccess(timingFor(i, timing)) *
             ci.spatialCount * ci.temporalCount;
    }
    return e;
}

std::vector<std::pair<std::string, Energy>>
AComponent::cellBreakdown(const ComponentTiming &timing) const
{
    std::vector<std::pair<std::string, Energy>> out;
    out.reserve(cells_.size());
    for (size_t i = 0; i < cells_.size(); ++i) {
        const CellInstance &ci = cells_[i];
        Energy e = ci.cell->energyPerAccess(timingFor(i, timing)) *
                   ci.spatialCount * ci.temporalCount;
        out.emplace_back(ci.cell->name(), e);
    }
    return out;
}

// ---------------------------------------------------------------------
// Component library.
// ---------------------------------------------------------------------

namespace
{

std::shared_ptr<const ACell>
photodiodeCell(const ApsParams &p)
{
    return std::make_shared<DynamicCell>(
        "photodiode", std::vector<CapNode>{
            { p.photodiodeCap, p.pixelSwing } });
}

std::shared_ptr<const ACell>
sourceFollowerCell(const ApsParams &p)
{
    StaticBiasParams sb;
    sb.loadCapacitance = p.columnLoadCap;
    sb.voltageSwing = p.pixelSwing;
    sb.vdda = p.vdda;
    sb.mode = BiasMode::DirectDrive;
    return std::make_shared<StaticBiasedCell>("source-follower", sb);
}

Capacitance
resolveCap(Capacitance configured, int bits, Voltage vswing)
{
    if (configured > 0.0)
        return configured;
    return DynamicCell::capForResolution(bits, vswing);
}

std::shared_ptr<const ACell>
opampCell(const SwitchedCapParams &p, Capacitance load)
{
    StaticBiasParams sb;
    sb.loadCapacitance = load;
    sb.voltageSwing = p.vswing;
    sb.vdda = p.vdda;
    sb.gain = p.gain;
    sb.gmOverId = p.gmOverId;
    sb.mode = BiasMode::GmOverId;
    return std::make_shared<StaticBiasedCell>("opamp", sb);
}

} // namespace

AComponent
makeAps4T(const ApsParams &params)
{
    if (params.pixelsPerComponent < 1)
        fatal("makeAps4T: pixelsPerComponent must be >= 1");

    AComponent c("4T-APS", SignalDomain::Optical, SignalDomain::Voltage);
    c.addCell(photodiodeCell(params), params.pixelsPerComponent, 1);
    c.addCell(std::make_shared<DynamicCell>(
                  "floating-diffusion",
                  std::vector<CapNode>{ { params.floatingDiffusionCap,
                                          params.pixelSwing } }),
              1, 1);
    c.addCell(sourceFollowerCell(params), 1,
              params.correlatedDoubleSampling ? 2 : 1);
    return c;
}

AComponent
makeAps3T(ApsParams params)
{
    if (params.pixelsPerComponent < 1)
        fatal("makeAps3T: pixelsPerComponent must be >= 1");
    params.correlatedDoubleSampling = false; // 3T cannot do true CDS

    AComponent c("3T-APS", SignalDomain::Optical, SignalDomain::Voltage);
    c.addCell(photodiodeCell(params), params.pixelsPerComponent, 1);
    c.addCell(sourceFollowerCell(params), 1, 1);
    return c;
}

AComponent
makeDps(int bits, const ApsParams &params)
{
    AComponent c("DPS", SignalDomain::Optical, SignalDomain::Digital);
    c.addCell(photodiodeCell(params), params.pixelsPerComponent, 1);
    c.addCell(std::make_shared<NonLinearCell>("in-pixel-adc", bits), 1, 1);
    return c;
}

AComponent
makePwmPixel(const ApsParams &params)
{
    AComponent c("PWM-pixel", SignalDomain::Optical, SignalDomain::Time);
    c.addCell(photodiodeCell(params), params.pixelsPerComponent, 1);
    c.addCell(std::make_shared<NonLinearCell>("pwm-comparator", 1), 1, 1);
    return c;
}

AComponent
makeColumnAdc(const AdcParams &params)
{
    AComponent c("ADC", SignalDomain::Voltage, SignalDomain::Digital);
    c.addCell(std::make_shared<NonLinearCell>(
                  "adc", params.bits, params.energyPerConversionOverride),
              1, 1);
    return c;
}

AComponent
makeSwitchedCapMac(const SwitchedCapParams &params)
{
    Capacitance unit = resolveCap(params.unitCap, params.bits,
                                  params.vswing);
    if (params.numCaps < 1)
        fatal("makeSwitchedCapMac: numCaps must be >= 1");

    AComponent c("SC-MAC", SignalDomain::Voltage, SignalDomain::Voltage);
    c.addCell(std::make_shared<DynamicCell>(
                  "cap-array", std::vector<CapNode>(
                      static_cast<size_t>(params.numCaps),
                      CapNode{ unit, params.vswing })),
              1, 1);
    if (params.active) {
        c.addCell(opampCell(params,
                            unit * static_cast<double>(params.numCaps)),
                  1, 1);
    }
    return c;
}

AComponent
makeChargeAdder(SwitchedCapParams params)
{
    params.active = false;
    Capacitance unit = resolveCap(params.unitCap, params.bits,
                                  params.vswing);
    AComponent c("charge-adder", SignalDomain::Charge,
                 SignalDomain::Charge);
    c.addCell(std::make_shared<DynamicCell>(
                  "cap-array", std::vector<CapNode>(
                      static_cast<size_t>(params.numCaps),
                      CapNode{ unit, params.vswing })),
              1, 1);
    return c;
}

AComponent
makeScaler(SwitchedCapParams params)
{
    Capacitance unit = resolveCap(params.unitCap, params.bits,
                                  params.vswing);
    AComponent c("scaler", SignalDomain::Voltage, SignalDomain::Voltage);
    c.addCell(std::make_shared<DynamicCell>(
                  "cap-divider", std::vector<CapNode>(
                      static_cast<size_t>(params.numCaps),
                      CapNode{ unit, params.vswing })),
              1, 1);
    if (params.active)
        c.addCell(opampCell(params, unit * params.numCaps), 1, 1);
    return c;
}

AComponent
makeAbsUnit(SwitchedCapParams params)
{
    Capacitance unit = resolveCap(params.unitCap, params.bits,
                                  params.vswing);
    AComponent c("abs", SignalDomain::Voltage, SignalDomain::Voltage);
    c.addCell(std::make_shared<DynamicCell>(
                  "cap-pair", std::vector<CapNode>(
                      2, CapNode{ unit, params.vswing })),
              1, 1);
    c.addCell(opampCell(params, 2.0 * unit), 1, 1);
    return c;
}

AComponent
makeMaxUnit(int num_inputs)
{
    if (num_inputs < 2)
        fatal("makeMaxUnit: need at least 2 inputs (got %d)", num_inputs);
    AComponent c("max", SignalDomain::Voltage, SignalDomain::Voltage);
    // Winner-take-all tree: n-1 pairwise comparisons.
    c.addCell(std::make_shared<NonLinearCell>("wta-comparator", 1),
              num_inputs - 1, 1);
    return c;
}

AComponent
makeComparator(Energy energy_override)
{
    AComponent c("comparator", SignalDomain::Voltage,
                 SignalDomain::Digital);
    c.addCell(std::make_shared<NonLinearCell>("comparator", 1,
                                              energy_override),
              1, 1);
    return c;
}

AComponent
makeLogUnit(Capacitance load, Voltage vdda)
{
    StaticBiasParams sb;
    sb.loadCapacitance = load;
    sb.voltageSwing = 0.3; // subthreshold log response swing
    sb.vdda = vdda;
    sb.mode = BiasMode::DirectDrive;

    AComponent c("log", SignalDomain::Voltage, SignalDomain::Voltage);
    c.addCell(std::make_shared<StaticBiasedCell>("sub-vt-log", sb), 1, 1);
    return c;
}

AComponent
makePassiveAnalogMemory(const AnalogMemoryParams &params)
{
    Capacitance store = resolveCap(params.storageCap, params.bits,
                                   params.vswing);
    AComponent c("passive-analog-memory", SignalDomain::Voltage,
                 SignalDomain::Voltage);
    // Write: charge the storage cap. Read: charge-share with the
    // consumer sampling cap (same order of energy).
    c.addCell(std::make_shared<DynamicCell>(
                  "store-cap", std::vector<CapNode>{
                      { store, params.vswing } }),
              1, 1 + params.readsPerValue);
    return c;
}

namespace
{

std::shared_ptr<const ACell>
converterOpamp(const ConverterParams &p, Capacitance load)
{
    StaticBiasParams sb;
    sb.loadCapacitance = load;
    sb.voltageSwing = p.vswing;
    sb.vdda = p.vdda;
    sb.gmOverId = p.gmOverId;
    sb.mode = BiasMode::GmOverId;
    return std::make_shared<StaticBiasedCell>("conv-opamp", sb);
}

} // namespace

AComponent
makeChargeToVoltage(const ConverterParams &params)
{
    Capacitance c = resolveCap(params.cap, params.bits, params.vswing);
    AComponent comp("charge-to-voltage", SignalDomain::Charge,
                    SignalDomain::Voltage);
    comp.addCell(std::make_shared<DynamicCell>(
                     "integration-cap",
                     std::vector<CapNode>{ { c, params.vswing } }),
                 1, 1);
    comp.addCell(converterOpamp(params, c), 1, 1);
    return comp;
}

AComponent
makeCurrentToVoltage(const ConverterParams &params)
{
    Capacitance c = resolveCap(params.cap, params.bits, params.vswing);
    AComponent comp("current-to-voltage", SignalDomain::Current,
                    SignalDomain::Voltage);
    comp.addCell(converterOpamp(params, c), 1, 1);
    comp.addCell(std::make_shared<DynamicCell>(
                     "feedback-cap",
                     std::vector<CapNode>{ { c, params.vswing } }),
                 1, 1);
    return comp;
}

AComponent
makeTimeToVoltage(const ConverterParams &params)
{
    Capacitance c = resolveCap(params.cap, params.bits, params.vswing);
    AComponent comp("time-to-voltage", SignalDomain::Time,
                    SignalDomain::Voltage);
    // A ramp charges the sampling cap for the pulse duration.
    StaticBiasParams ramp;
    ramp.loadCapacitance = c;
    ramp.voltageSwing = params.vswing;
    ramp.vdda = params.vdda;
    ramp.mode = BiasMode::DirectDrive;
    comp.addCell(std::make_shared<StaticBiasedCell>("ramp-source",
                                                    ramp),
                 1, 1);
    comp.addCell(std::make_shared<DynamicCell>(
                     "sample-cap",
                     std::vector<CapNode>{ { c, params.vswing } }),
                 1, 1);
    return comp;
}

AComponent
makeSampleHold(const ConverterParams &params)
{
    Capacitance c = resolveCap(params.cap, params.bits, params.vswing);
    AComponent comp("sample-and-hold", SignalDomain::Voltage,
                    SignalDomain::Voltage);
    comp.addCell(std::make_shared<DynamicCell>(
                     "sample-cap",
                     std::vector<CapNode>{ { c, params.vswing } }),
                 1, 1);
    comp.addCell(converterOpamp(params, c), 1, 1,
                 TimingScope::ComponentSpan);
    return comp;
}

AComponent
makeDvsPixel(const ApsParams &params)
{
    AComponent comp("DVS-pixel", SignalDomain::Optical,
                    SignalDomain::Digital);
    comp.addCell(photodiodeCell(params), params.pixelsPerComponent, 1);
    // Asynchronous delta modulator: a switched-cap differencing
    // amplifier plus ON/OFF event comparators.
    comp.addCell(std::make_shared<DynamicCell>(
                     "delta-caps",
                     std::vector<CapNode>(
                         2, CapNode{ 25e-15, params.pixelSwing })),
                 1, 1);
    comp.addCell(std::make_shared<NonLinearCell>("event-comparator",
                                                 1),
                 2, 1); // ON and OFF comparators
    return comp;
}

AComponent
makeActiveAnalogMemory(const AnalogMemoryParams &params)
{
    Capacitance store = resolveCap(params.storageCap, params.bits,
                                   params.vswing);

    AComponent c("active-analog-memory", SignalDomain::Voltage,
                 SignalDomain::Voltage);
    c.addCell(std::make_shared<DynamicCell>(
                  "store-cap", std::vector<CapNode>{
                      { store, params.vswing } }),
              1, 1);

    StaticBiasParams sb;
    sb.loadCapacitance = params.readoutLoadCap;
    sb.voltageSwing = params.vswing;
    sb.vdda = params.vdda;
    sb.mode = BiasMode::DirectDrive;
    c.addCell(std::make_shared<StaticBiasedCell>("readout-sf", sb), 1,
              params.readsPerValue);
    return c;
}

} // namespace camj
