#include "analog/acell.h"

#include <cmath>
#include <numbers>

#include "analog/adc_fom.h"
#include "common/logging.h"

namespace camj
{

DynamicCell::DynamicCell(std::string name, std::vector<CapNode> nodes)
    : ACell(std::move(name)), nodes_(std::move(nodes))
{
    if (nodes_.empty())
        fatal("DynamicCell %s: no capacitance nodes", this->name().c_str());
    for (const auto &n : nodes_) {
        if (n.capacitance <= 0.0)
            fatal("DynamicCell %s: non-positive capacitance %g F",
                  this->name().c_str(), n.capacitance);
        if (n.voltageSwing < 0.0)
            fatal("DynamicCell %s: negative voltage swing %g V",
                  this->name().c_str(), n.voltageSwing);
    }
}

Energy
DynamicCell::energyPerAccess(const CellTiming &) const
{
    Energy e = 0.0;
    for (const auto &n : nodes_)
        e += n.capacitance * n.voltageSwing * n.voltageSwing;
    return e;
}

Capacitance
DynamicCell::totalCapacitance() const
{
    Capacitance c = 0.0;
    for (const auto &n : nodes_)
        c += n.capacitance;
    return c;
}

Capacitance
DynamicCell::capForResolution(int bits, Voltage vswing,
                              double temperature_k)
{
    if (bits < 1 || bits > 16)
        fatal("capForResolution: resolution %d outside [1, 16]", bits);
    if (vswing <= 0.0)
        fatal("capForResolution: non-positive swing %g V", vswing);
    if (temperature_k <= 0.0)
        fatal("capForResolution: non-positive temperature %g K",
              temperature_k);

    // Eq. 6: 3 * sqrt(kT/C) < 0.5 * Vvs / 2^bits
    //   =>  C > kT * (6 * 2^bits / Vvs)^2
    double ratio = 6.0 * std::pow(2.0, bits) / vswing;
    return constants::kBoltzmann * temperature_k * ratio * ratio;
}

StaticBiasedCell::StaticBiasedCell(std::string name,
                                   StaticBiasParams params)
    : ACell(std::move(name)), params_(params)
{
    if (params_.loadCapacitance <= 0.0)
        fatal("StaticBiasedCell %s: non-positive load capacitance",
              this->name().c_str());
    if (params_.voltageSwing <= 0.0 || params_.vdda <= 0.0)
        fatal("StaticBiasedCell %s: non-positive voltage",
              this->name().c_str());
    if (params_.mode == BiasMode::GmOverId &&
        (params_.gmOverId < 1.0 || params_.gmOverId > 30.0))
        fatal("StaticBiasedCell %s: gm/Id %g outside [1, 30]",
              this->name().c_str(), params_.gmOverId);
    if (params_.gain <= 0.0)
        fatal("StaticBiasedCell %s: non-positive gain",
              this->name().c_str());
}

Current
StaticBiasedCell::biasCurrent(const CellTiming &timing) const
{
    if (params_.mode == BiasMode::DirectDrive) {
        // Eq. 8: charge the load within the static window.
        if (timing.staticTime <= 0.0)
            fatal("StaticBiasedCell %s: DirectDrive needs staticTime > 0",
                  name().c_str());
        return params_.loadCapacitance * params_.voltageSwing /
               timing.staticTime;
    }
    // Eq. 10: gm/Id method. GBW comes from the allocated delay, or
    // from an externally-fixed bandwidth (analog frame buffers).
    double gbw;
    if (params_.fixedBandwidth > 0.0) {
        gbw = params_.gain * params_.fixedBandwidth;
    } else {
        if (timing.delay <= 0.0)
            fatal("StaticBiasedCell %s: GmOverId needs delay > 0",
                  name().c_str());
        gbw = params_.gain / timing.delay;
    }
    return 2.0 * std::numbers::pi * params_.loadCapacitance * gbw /
           params_.gmOverId;
}

Energy
StaticBiasedCell::energyPerAccess(const CellTiming &timing) const
{
    if (params_.mode == BiasMode::DirectDrive) {
        // Eq. 9: E = Cload * Vvs * VDDA (time cancels out).
        return params_.loadCapacitance * params_.voltageSwing *
               params_.vdda;
    }
    // Eq. 7: E = VDDA * Ibias * t_static.
    if (timing.staticTime < 0.0)
        fatal("StaticBiasedCell %s: negative staticTime",
              name().c_str());
    return params_.vdda * biasCurrent(timing) * timing.staticTime;
}

NonLinearCell::NonLinearCell(std::string name, int bits,
                             Energy energy_override)
    : ACell(std::move(name)), bits_(bits),
      energyOverride_(energy_override)
{
    if (bits_ < 1 || bits_ > 16)
        fatal("NonLinearCell %s: resolution %d outside [1, 16]",
              this->name().c_str(), bits_);
    if (energyOverride_ < 0.0)
        fatal("NonLinearCell %s: negative energy override",
              this->name().c_str());
}

Energy
NonLinearCell::energyPerAccess(const CellTiming &timing) const
{
    if (energyOverride_ > 0.0)
        return energyOverride_;
    if (timing.delay <= 0.0)
        fatal("NonLinearCell %s: needs delay > 0 for the FoM lookup",
              name().c_str());
    return adcEnergyPerConversion(bits_, 1.0 / timing.delay);
}

} // namespace camj
