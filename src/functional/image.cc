#include "functional/image.h"

#include "common/logging.h"

namespace camj
{

Image::Image(const Shape &shape)
    : shape_(shape)
{
    if (!shape.valid())
        fatal("Image: invalid shape %s", shape.str().c_str());
    data_.assign(static_cast<size_t>(shape.count()), 0.0f);
}

int64_t
Image::index(int64_t x, int64_t y, int64_t c) const
{
    if (x < 0 || x >= shape_.width || y < 0 || y >= shape_.height ||
        c < 0 || c >= shape_.channels) {
        fatal("Image: access (%lld, %lld, %lld) outside %s",
              static_cast<long long>(x), static_cast<long long>(y),
              static_cast<long long>(c), shape_.str().c_str());
    }
    return (c * shape_.height + y) * shape_.width + x;
}

float
Image::at(int64_t x, int64_t y, int64_t c) const
{
    ++reads_;
    return data_[static_cast<size_t>(index(x, y, c))];
}

void
Image::set(int64_t x, int64_t y, int64_t c, float value)
{
    ++writes_;
    data_[static_cast<size_t>(index(x, y, c))] = value;
}

float
Image::peek(int64_t x, int64_t y, int64_t c) const
{
    return data_[static_cast<size_t>(index(x, y, c))];
}

void
Image::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

void
Image::fillPattern(uint32_t seed)
{
    // xorshift32: deterministic, seed-stable across platforms.
    uint32_t state = seed ? seed : 0xdeadbeef;
    for (auto &v : data_) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        v = static_cast<float>(state % 256u);
    }
}

void
Image::resetCounters()
{
    reads_ = 0;
    writes_ = 0;
}

} // namespace camj
