/**
 * @file
 * A small instrumented image/tensor type for the functional engine.
 *
 * Every element read and write is counted; the functional executor
 * uses these counters to cross-validate CamJ's analytic access-count
 * formulas (Eq. 3 of the paper) against an actual execution.
 */

#ifndef CAMJ_FUNCTIONAL_IMAGE_H
#define CAMJ_FUNCTIONAL_IMAGE_H

#include <cstdint>
#include <vector>

#include "common/shape.h"

namespace camj
{

/** A (width x height x channels) float image with access counting. */
class Image
{
  public:
    /** Construct a zero-initialized image. @throws ConfigError on an
     *  invalid shape. */
    explicit Image(const Shape &shape);

    const Shape &shape() const { return shape_; }

    /** Counted element read. @throws ConfigError when out of range. */
    float at(int64_t x, int64_t y, int64_t c = 0) const;

    /** Counted element write. @throws ConfigError when out of range. */
    void set(int64_t x, int64_t y, int64_t c, float value);

    /** Uncounted read, for test assertions about pixel values. */
    float peek(int64_t x, int64_t y, int64_t c = 0) const;

    /** Uncounted fill, for test setup. */
    void fill(float value);

    /** Uncounted deterministic pseudo-random fill, for test setup. */
    void fillPattern(uint32_t seed);

    /** Element reads since construction or resetCounters(). */
    int64_t reads() const { return reads_; }

    /** Element writes since construction or resetCounters(). */
    int64_t writes() const { return writes_; }

    /** Zero the access counters. */
    void resetCounters();

  private:
    Shape shape_;
    std::vector<float> data_;
    mutable int64_t reads_ = 0;
    int64_t writes_ = 0;

    int64_t index(int64_t x, int64_t y, int64_t c) const;
};

} // namespace camj

#endif // CAMJ_FUNCTIONAL_IMAGE_H
