#include "functional/executor.h"

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace camj
{

namespace
{

// Deterministic weight generator seeded from the stage name.
class WeightGen
{
  public:
    explicit WeightGen(const std::string &name)
    {
        uint32_t h = 2166136261u;
        for (char c : name) {
            h ^= static_cast<uint8_t>(c);
            h *= 16777619u;
        }
        state_ = h ? h : 0x9e3779b9u;
    }

    /** Next weight in [-1, 1]. */
    float
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return static_cast<float>(state_ % 2001u) / 1000.0f - 1.0f;
    }

  private:
    uint32_t state_;
};

} // namespace

Executor::Executor(const SwGraph &graph)
    : graph_(graph)
{
    graph_.validate();
}

void
Executor::run(const std::map<StageId, Image> &inputs)
{
    outputs_.clear();
    outputs_.reserve(static_cast<size_t>(graph_.size()));
    stats_.assign(static_cast<size_t>(graph_.size()), StageExecStats{});
    for (StageId i = 0; i < graph_.size(); ++i)
        outputs_.emplace_back(graph_.stage(i).outputSize());

    for (StageId id : graph_.topoOrder()) {
        const Stage &s = graph_.stage(id);
        if (s.op() == StageOp::Input) {
            auto it = inputs.find(id);
            if (it == inputs.end())
                fatal("Executor: no image supplied for input stage '%s'",
                      s.name().c_str());
            if (it->second.shape() != s.outputSize())
                fatal("Executor: input '%s' shape %s != stage shape %s",
                      s.name().c_str(), it->second.shape().str().c_str(),
                      s.outputSize().str().c_str());
            // Copy values without disturbing the caller's counters.
            Image &out = outputs_[static_cast<size_t>(id)];
            const Shape &sh = out.shape();
            for (int64_t c = 0; c < sh.channels; ++c)
                for (int64_t y = 0; y < sh.height; ++y)
                    for (int64_t x = 0; x < sh.width; ++x)
                        out.set(x, y, c, it->second.peek(x, y, c));
            out.resetCounters();
            continue;
        }

        std::vector<const Image *> ins;
        for (StageId p : graph_.inputsOf(id))
            ins.push_back(&outputs_[static_cast<size_t>(p)]);
        for (const Image *in : ins)
            const_cast<Image *>(in)->resetCounters();

        Image &out = outputs_[static_cast<size_t>(id)];
        StageExecStats &st = stats_[static_cast<size_t>(id)];
        execStage(id, ins, out, st);

        for (const Image *in : ins)
            st.reads += in->reads();
        st.writes = out.writes();
    }
    hasRun_ = true;
}

void
Executor::execStage(StageId id, const std::vector<const Image *> &ins,
                    Image &out, StageExecStats &st)
{
    const Stage &s = graph_.stage(id);
    const Shape &osh = s.outputSize();
    const Shape &k = s.kernel();
    const Shape &stride = s.stride();
    const Image &in0 = *ins.at(0);

    switch (s.op()) {
      case StageOp::Input:
        panic("execStage: Input reached dispatch");

      case StageOp::Binning:
      case StageOp::AvgPool:
        for (int64_t c = 0; c < osh.channels; ++c) {
            for (int64_t oy = 0; oy < osh.height; ++oy) {
                for (int64_t ox = 0; ox < osh.width; ++ox) {
                    float sum = 0.0f;
                    for (int64_t ky = 0; ky < k.height; ++ky) {
                        for (int64_t kx = 0; kx < k.width; ++kx) {
                            sum += in0.at(ox * stride.width + kx,
                                          oy * stride.height + ky, c);
                            ++st.ops;
                        }
                    }
                    out.set(ox, oy, c,
                            sum / static_cast<float>(k.width * k.height));
                }
            }
        }
        break;

      case StageOp::MaxPool:
        for (int64_t c = 0; c < osh.channels; ++c) {
            for (int64_t oy = 0; oy < osh.height; ++oy) {
                for (int64_t ox = 0; ox < osh.width; ++ox) {
                    float best = -1e30f;
                    for (int64_t ky = 0; ky < k.height; ++ky) {
                        for (int64_t kx = 0; kx < k.width; ++kx) {
                            float v = in0.at(ox * stride.width + kx,
                                             oy * stride.height + ky, c);
                            best = v > best ? v : best;
                            ++st.ops;
                        }
                    }
                    out.set(ox, oy, c, best);
                }
            }
        }
        break;

      case StageOp::DepthwiseConv2d: {
        WeightGen wg(s.name());
        std::vector<float> w(static_cast<size_t>(k.width * k.height *
                                                 osh.channels));
        for (auto &v : w)
            v = wg.next();
        for (int64_t c = 0; c < osh.channels; ++c) {
            for (int64_t oy = 0; oy < osh.height; ++oy) {
                for (int64_t ox = 0; ox < osh.width; ++ox) {
                    float acc = 0.0f;
                    for (int64_t ky = 0; ky < k.height; ++ky) {
                        for (int64_t kx = 0; kx < k.width; ++kx) {
                            size_t wi = static_cast<size_t>(
                                (c * k.height + ky) * k.width + kx);
                            acc += w[wi] *
                                   in0.at(ox * stride.width + kx,
                                          oy * stride.height + ky, c);
                            ++st.ops;
                        }
                    }
                    out.set(ox, oy, c, acc);
                }
            }
        }
        break;
      }

      case StageOp::Conv2d: {
        WeightGen wg(s.name());
        const int64_t ksize = k.count();
        std::vector<float> w(static_cast<size_t>(ksize * osh.channels));
        for (auto &v : w)
            v = wg.next();
        for (int64_t oc = 0; oc < osh.channels; ++oc) {
            for (int64_t oy = 0; oy < osh.height; ++oy) {
                for (int64_t ox = 0; ox < osh.width; ++ox) {
                    float acc = 0.0f;
                    for (int64_t ic = 0; ic < k.channels; ++ic) {
                        for (int64_t ky = 0; ky < k.height; ++ky) {
                            for (int64_t kx = 0; kx < k.width; ++kx) {
                                size_t wi = static_cast<size_t>(
                                    oc * ksize +
                                    (ic * k.height + ky) * k.width + kx);
                                acc += w[wi] *
                                       in0.at(ox * stride.width + kx,
                                              oy * stride.height + ky,
                                              ic);
                                ++st.ops;
                            }
                        }
                    }
                    out.set(ox, oy, oc, acc);
                }
            }
        }
        break;
      }

      case StageOp::FullyConnected: {
        WeightGen wg(s.name());
        const Shape &ish = s.inputSize();
        for (int64_t o = 0; o < osh.count(); ++o) {
            float acc = 0.0f;
            for (int64_t c = 0; c < ish.channels; ++c) {
                for (int64_t y = 0; y < ish.height; ++y) {
                    for (int64_t x = 0; x < ish.width; ++x) {
                        acc += wg.next() * in0.at(x, y, c);
                        ++st.ops;
                    }
                }
            }
            out.set(o % osh.width, (o / osh.width) % osh.height,
                    o / (osh.width * osh.height), acc);
        }
        break;
      }

      case StageOp::ElementwiseSub:
      case StageOp::ElementwiseAdd:
      case StageOp::AbsDiff: {
        const Image &in1 = *ins.at(1);
        for (int64_t c = 0; c < osh.channels; ++c) {
            for (int64_t y = 0; y < osh.height; ++y) {
                for (int64_t x = 0; x < osh.width; ++x) {
                    float a = in0.at(x, y, c);
                    float b = in1.at(x, y, c);
                    float v = 0.0f;
                    if (s.op() == StageOp::ElementwiseSub)
                        v = a - b;
                    else if (s.op() == StageOp::ElementwiseAdd)
                        v = a + b;
                    else
                        v = std::fabs(a - b);
                    ++st.ops;
                    out.set(x, y, c, v);
                }
            }
        }
        break;
      }

      case StageOp::Threshold:
      case StageOp::Scale:
      case StageOp::LogResponse:
      case StageOp::Absolute:
      case StageOp::CompareSample:
      case StageOp::Identity:
        for (int64_t c = 0; c < osh.channels; ++c) {
            for (int64_t y = 0; y < osh.height; ++y) {
                for (int64_t x = 0; x < osh.width; ++x) {
                    float a = in0.at(x, y, c);
                    float v = a;
                    switch (s.op()) {
                      case StageOp::Threshold:
                      case StageOp::CompareSample:
                        v = a > 128.0f ? 1.0f : 0.0f;
                        ++st.ops;
                        break;
                      case StageOp::Scale:
                        v = a * 0.5f;
                        ++st.ops;
                        break;
                      case StageOp::LogResponse:
                        v = std::log1p(std::fabs(a));
                        ++st.ops;
                        break;
                      case StageOp::Absolute:
                        v = std::fabs(a);
                        ++st.ops;
                        break;
                      default:
                        break; // Identity: pure movement, no ops
                    }
                    out.set(x, y, c, v);
                }
            }
        }
        break;
    }
}

const Image &
Executor::output(StageId id) const
{
    if (!hasRun_)
        fatal("Executor: output() before run()");
    if (id < 0 || id >= graph_.size())
        fatal("Executor: invalid stage id %d", id);
    return outputs_[static_cast<size_t>(id)];
}

const StageExecStats &
Executor::stats(StageId id) const
{
    if (!hasRun_)
        fatal("Executor: stats() before run()");
    if (id < 0 || id >= graph_.size())
        fatal("Executor: invalid stage id %d", id);
    return stats_[static_cast<size_t>(id)];
}

} // namespace camj
