/**
 * @file
 * Executable semantics for the algorithm DAG.
 *
 * CamJ's energy estimation never executes pixels — access counts are
 * derived analytically from the declarative stage description. This
 * engine exists to *prove* those formulas: it runs every stage on real
 * pixel buffers with per-element access counting, so tests can assert
 *
 *   executor reads  == Stage::inputReadsPerFrame()
 *   executor writes == Stage::outputsPerFrame()
 *   executor ops    == Stage::opsPerFrame()
 *
 * and also check value-level ground truth (binning of a constant image
 * is constant, subtraction of identical frames is zero, ...).
 */

#ifndef CAMJ_FUNCTIONAL_EXECUTOR_H
#define CAMJ_FUNCTIONAL_EXECUTOR_H

#include <map>
#include <vector>

#include "functional/image.h"
#include "sw/graph.h"

namespace camj
{

/** Observed per-stage execution statistics. */
struct StageExecStats
{
    /** Input elements read (from all operands). */
    int64_t reads = 0;
    /** Output elements written. */
    int64_t writes = 0;
    /** Arithmetic operations performed. */
    int64_t ops = 0;
};

/**
 * Executes a validated SwGraph on concrete images.
 *
 * Weights for Conv2d / DepthwiseConv2d / FullyConnected stages are
 * deterministic pseudo-random values derived from the stage name, so
 * runs are reproducible without a weight-loading interface.
 */
class Executor
{
  public:
    /**
     * @param graph The algorithm DAG; validate() must pass.
     * @throws ConfigError if the graph is malformed.
     */
    explicit Executor(const SwGraph &graph);

    /**
     * Run one frame.
     *
     * @param inputs One image per Input stage, keyed by StageId; each
     *        must match the stage's output shape.
     * @throws ConfigError on missing or mis-shaped inputs.
     */
    void run(const std::map<StageId, Image> &inputs);

    /** Output image of @p id from the last run(). */
    const Image &output(StageId id) const;

    /** Execution statistics of @p id from the last run(). */
    const StageExecStats &stats(StageId id) const;

  private:
    const SwGraph &graph_;
    std::vector<Image> outputs_;
    std::vector<StageExecStats> stats_;
    bool hasRun_ = false;

    void execStage(StageId id, const std::vector<const Image *> &ins,
                   Image &out, StageExecStats &st);
};

} // namespace camj

#endif // CAMJ_FUNCTIONAL_EXECUTOR_H
