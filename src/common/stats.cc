#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace camj
{

namespace
{

void
checkPaired(const std::vector<double> &xs, const std::vector<double> &ys,
            size_t min_size, const char *who)
{
    if (xs.size() != ys.size())
        fatal("%s: series lengths differ (%zu vs %zu)", who, xs.size(),
              ys.size());
    if (xs.size() < min_size)
        fatal("%s: need at least %zu points, got %zu", who, min_size,
              xs.size());
}

} // namespace

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkPaired(xs, ys, 2, "pearson");

    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        fatal("pearson: a series is constant; correlation undefined");
    return sxy / std::sqrt(sxx * syy);
}

double
mape(const std::vector<double> &estimated,
     const std::vector<double> &reference)
{
    checkPaired(estimated, reference, 1, "mape");

    double sum = 0.0;
    for (size_t i = 0; i < estimated.size(); ++i) {
        if (reference[i] == 0.0)
            fatal("mape: reference value at index %zu is zero", i);
        sum += std::fabs((estimated[i] - reference[i]) / reference[i]);
    }
    return sum / static_cast<double>(estimated.size());
}

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkPaired(xs, ys, 2, "linearFit");

    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0)
        fatal("linearFit: x series is constant");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("mean: empty input");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        fatal("median: empty input");
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("geomean: empty input");
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean: non-positive value %g", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace camj
