#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace camj
{

std::string
formatEng(double value, const std::string &unit, int precision)
{
    struct Prefix { double scale; const char *name; };
    static constexpr std::array<Prefix, 9> prefixes = {{
        { 1e-18, "a" }, { 1e-15, "f" }, { 1e-12, "p" }, { 1e-9, "n" },
        { 1e-6, "u" }, { 1e-3, "m" }, { 1.0, "" }, { 1e3, "k" },
        { 1e6, "M" },
    }};

    if (value == 0.0)
        return "0 " + unit;

    double mag = std::fabs(value);
    const Prefix *best = &prefixes.front();
    for (const auto &p : prefixes) {
        if (mag >= p.scale)
            best = &p;
    }

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s%s", precision,
                  value / best->scale, best->name, unit.c_str());
    return buf;
}

std::string
formatEnergy(Energy e)
{
    return formatEng(e, "J");
}

std::string
formatTime(Time t)
{
    return formatEng(t, "s");
}

std::string
formatPower(Power p)
{
    return formatEng(p, "W");
}

} // namespace camj
