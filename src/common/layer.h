/**
 * @file
 * Physical placement of a hardware unit: on the sensor die, on a
 * stacked compute die, or off-sensor on the host SoC. Drives the
 * communication-energy accounting (uTSV between stacked layers, MIPI
 * CSI-2 off sensor) and the power-density footprint model.
 */

#ifndef CAMJ_COMMON_LAYER_H
#define CAMJ_COMMON_LAYER_H

namespace camj
{

/** Die/location a hardware unit lives on. */
enum class Layer
{
    /** The pixel (sensor) die. */
    Sensor,
    /** A 3D-stacked compute die under the sensor die. */
    Compute,
    /** A 3D-stacked memory die (the middle DRAM layer of
     *  three-layer sensors like the Sony IMX400). */
    Dram,
    /** The host SoC, outside the sensor package. */
    OffChip,
};

/** Human-readable layer name. */
inline const char *
layerName(Layer layer)
{
    switch (layer) {
      case Layer::Sensor: return "sensor";
      case Layer::Compute: return "stacked-compute";
      case Layer::Dram: return "stacked-dram";
      case Layer::OffChip: return "off-chip";
    }
    return "?";
}

} // namespace camj

#endif // CAMJ_COMMON_LAYER_H
