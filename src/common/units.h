/**
 * @file
 * Unit conventions and physical constants used throughout CamJ.
 *
 * CamJ follows the gem5 convention of using plain doubles in strict SI
 * units (joules, seconds, hertz, volts, farads, amperes, watts, square
 * meters, bytes). The constants below make configuration code read like
 * the paper ("100 * units::fF", "30 * units::fps") and the formatting
 * helpers render values with engineering prefixes for reports.
 */

#ifndef CAMJ_COMMON_UNITS_H
#define CAMJ_COMMON_UNITS_H

#include <string>

namespace camj
{

/** Energy in joules. */
using Energy = double;
/** Time in seconds. */
using Time = double;
/** Frequency in hertz. */
using Frequency = double;
/** Electric potential in volts. */
using Voltage = double;
/** Capacitance in farads. */
using Capacitance = double;
/** Current in amperes. */
using Current = double;
/** Power in watts. */
using Power = double;
/** Area in square meters. */
using Area = double;

namespace units
{

// Energy.
constexpr Energy aJ = 1e-18;
constexpr Energy fJ = 1e-15;
constexpr Energy pJ = 1e-12;
constexpr Energy nJ = 1e-9;
constexpr Energy uJ = 1e-6;
constexpr Energy mJ = 1e-3;

// Time.
constexpr Time ps = 1e-12;
constexpr Time ns = 1e-9;
constexpr Time us = 1e-6;
constexpr Time ms = 1e-3;
constexpr Time s = 1.0;

// Frequency.
constexpr Frequency Hz = 1.0;
constexpr Frequency kHz = 1e3;
constexpr Frequency MHz = 1e6;
constexpr Frequency GHz = 1e9;
/** Frames per second; dimensionally a frequency. */
constexpr Frequency fps = 1.0;

// Voltage.
constexpr Voltage mV = 1e-3;
constexpr Voltage V = 1.0;

// Capacitance.
constexpr Capacitance aF = 1e-18;
constexpr Capacitance fF = 1e-15;
constexpr Capacitance pF = 1e-12;
constexpr Capacitance nF = 1e-9;

// Current.
constexpr Current pA = 1e-12;
constexpr Current nA = 1e-9;
constexpr Current uA = 1e-6;
constexpr Current mA = 1e-3;

// Power.
constexpr Power pW = 1e-12;
constexpr Power nW = 1e-9;
constexpr Power uW = 1e-6;
constexpr Power mW = 1e-3;
constexpr Power W = 1.0;

// Area.
constexpr Area um2 = 1e-12;
constexpr Area mm2 = 1e-6;

// Data volume (bytes are dimensionless counts; named for readability).
constexpr double B = 1.0;
constexpr double KB = 1024.0;
constexpr double MB = 1024.0 * 1024.0;

} // namespace units

namespace constants
{

/** Boltzmann constant [J/K]. */
constexpr double kBoltzmann = 1.380649e-23;

/** Default operating temperature [K] for thermal-noise sizing. */
constexpr double roomTemperatureK = 300.0;

/** kT at room temperature [J]; the quantity in Eq. 6 of the paper. */
constexpr double kT = kBoltzmann * roomTemperatureK;

} // namespace constants

/**
 * Format a value with an engineering (power-of-1000) prefix.
 *
 * @param value Value in base SI units.
 * @param unit Unit suffix, e.g. "J" or "W".
 * @param precision Significant digits after the decimal point.
 * @return Human-readable string such as "3.21 pJ".
 */
std::string formatEng(double value, const std::string &unit,
                      int precision = 3);

/** Format an energy in joules, e.g. "12.4 pJ". */
std::string formatEnergy(Energy e);

/** Format a time in seconds, e.g. "33.3 ms". */
std::string formatTime(Time t);

/** Format a power in watts, e.g. "1.2 mW". */
std::string formatPower(Power p);

} // namespace camj

#endif // CAMJ_COMMON_UNITS_H
