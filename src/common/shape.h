/**
 * @file
 * Tensor/array shape descriptors shared by the algorithm description
 * (stage input/output/kernel/stride sizes) and the hardware description
 * (array dimensions, per-cycle I/O shapes).
 */

#ifndef CAMJ_COMMON_SHAPE_H
#define CAMJ_COMMON_SHAPE_H

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace camj
{

/**
 * A (width x height x channels) shape. Follows the paper's convention
 * of describing images and stencils as up-to-3D sizes; 1D and 2D uses
 * set the remaining dimensions to 1.
 */
struct Shape
{
    int64_t width = 1;
    int64_t height = 1;
    int64_t channels = 1;

    constexpr Shape() = default;

    constexpr Shape(int64_t w, int64_t h = 1, int64_t c = 1)
        : width(w), height(h), channels(c)
    {}

    /** Total number of elements. */
    constexpr int64_t count() const { return width * height * channels; }

    constexpr bool
    operator==(const Shape &o) const
    {
        return width == o.width && height == o.height &&
               channels == o.channels;
    }

    constexpr bool operator!=(const Shape &o) const { return !(*this == o); }

    /** True iff every dimension is >= 1. */
    constexpr bool
    valid() const
    {
        return width >= 1 && height >= 1 && channels >= 1;
    }

    /** Render as "WxHxC". */
    std::string
    str() const
    {
        return std::to_string(width) + "x" + std::to_string(height) + "x" +
               std::to_string(channels);
    }
};

/**
 * Number of stencil output positions along one axis.
 *
 * @param input Input extent.
 * @param kernel Stencil extent (must fit in the input).
 * @param stride Step between applications.
 */
inline int64_t
stencilOutputExtent(int64_t input, int64_t kernel, int64_t stride)
{
    if (kernel < 1 || stride < 1)
        fatal("stencil: kernel/stride must be >= 1 (got %lld, %lld)",
              static_cast<long long>(kernel),
              static_cast<long long>(stride));
    if (kernel > input)
        fatal("stencil: kernel %lld larger than input %lld",
              static_cast<long long>(kernel),
              static_cast<long long>(input));
    return (input - kernel) / stride + 1;
}

} // namespace camj

#endif // CAMJ_COMMON_SHAPE_H
