/**
 * @file
 * Small statistics helpers used by the validation harness and the
 * survey module: Pearson correlation, mean absolute percentage error,
 * least-squares linear regression, and a few aggregates.
 */

#ifndef CAMJ_COMMON_STATS_H
#define CAMJ_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace camj
{

/** Result of a least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;

    /** Evaluate the fitted line at @p x. */
    double operator()(double x) const { return slope * x + intercept; }
};

/**
 * Pearson correlation coefficient between two equal-length series.
 *
 * @throws ConfigError if the series differ in length or have fewer
 *         than two points.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Mean Absolute Percentage Error of estimates against references,
 * returned as a fraction (0.075 == 7.5%).
 *
 * @throws ConfigError on length mismatch, empty input, or a zero
 *         reference value.
 */
double mape(const std::vector<double> &estimated,
            const std::vector<double> &reference);

/** Least-squares linear regression. Requires at least two points. */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Arithmetic mean. Requires a non-empty input. */
double mean(const std::vector<double> &xs);

/** Median (of a copy; input is not modified). Requires non-empty input. */
double median(std::vector<double> xs);

/** Geometric mean. Requires non-empty input of positive values. */
double geomean(const std::vector<double> &xs);

} // namespace camj

#endif // CAMJ_COMMON_STATS_H
