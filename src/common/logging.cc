#include "common/logging.h"

#include <cstdio>
#include <vector>

namespace camj
{

namespace
{
bool loggingEnabled = true;
} // namespace

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return fmt;

    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    throw ConfigError("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    throw InternalError("panic: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (!loggingEnabled)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!loggingEnabled)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setLoggingEnabled(bool enabled)
{
    loggingEnabled = enabled;
}

} // namespace camj
