/**
 * @file
 * Error reporting in the gem5 style, adapted for a library.
 *
 * gem5 distinguishes fatal() (the user's fault: bad configuration,
 * invalid arguments) from panic() (the simulator's fault: a broken
 * internal invariant). Because CamJ is a library that is also driven
 * from unit tests, both report through exceptions instead of
 * terminating the process:
 *
 *   - fatal(...)  throws ConfigError  — the design description is
 *     invalid (mismatched signal domains, stalls, cycles in the DAG...).
 *   - panic(...)  throws InternalError — a CamJ bug.
 *   - warn(...) / inform(...) print to stderr/stdout and continue.
 */

#ifndef CAMJ_COMMON_LOGGING_H
#define CAMJ_COMMON_LOGGING_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace camj
{

/** Raised by fatal(): the user-supplied design description is invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Raised by panic(): an internal CamJ invariant was violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what) {}
};

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user configuration error. Never returns.
 *
 * @throws ConfigError always.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation. Never returns.
 *
 * @throws InternalError always.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning for questionable-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress or restore warn()/inform() output (quiet test runs). */
void setLoggingEnabled(bool enabled);

} // namespace camj

#endif // CAMJ_COMMON_LOGGING_H
