#include "memmodel/sttram.h"

#include <cmath>

#include "common/logging.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj
{

namespace
{

// 65 nm anchors. Reads sense a resistive state: cheap and nearly
// capacity-independent; writes must flip the magnetic tunnel junction.
constexpr Energy readBitBase65 = 35e-15;
constexpr Energy readBitSqrt65 = 0.02e-15;
constexpr Energy writeBit65 = 0.9e-12;

// The MTJ write current does not scale with logic voltage; writes
// improve only mildly with node.
constexpr double writeNodeExponent = 0.35;

// Peripheral (decoder/sense-amp) leakage as a fraction of what an
// equal-capacity SRAM would leak; the cell array itself retains state
// with no supply.
constexpr double peripheralLeakFraction = 0.02;

// 1T-1MTJ cell ~= 40 F^2.
constexpr double cellAreaF2 = 40.0;

} // namespace

MemoryCharacteristics
sttramModel(int64_t capacity_bytes, int word_bits, int nm)
{
    if (capacity_bytes < sttramMinCapacityBytes)
        fatal("sttramModel: %lld B below the 4 KB minimum "
              "(NVMExplorer-compatible limitation)",
              static_cast<long long>(capacity_bytes));
    if (word_bits < 1 || word_bits > 1024)
        fatal("sttramModel: word width %d outside [1, 1024] bits",
              word_bits);

    const double bits = static_cast<double>(capacity_bytes) * 8.0;
    const NodeParams node = nodeParams(nm);

    Energy read_bit_65 = readBitBase65 + readBitSqrt65 * std::sqrt(bits);

    MemoryCharacteristics mc;
    mc.capacityBytes = capacity_bytes;
    mc.wordBits = word_bits;
    mc.readEnergyPerWord = scaleEnergy(read_bit_65 * word_bits, 65, nm);
    mc.writeEnergyPerWord = writeBit65 * word_bits *
                            std::pow(static_cast<double>(nm) / 65.0,
                                     writeNodeExponent);
    mc.leakagePower = bits * node.sramLeakPerBit * peripheralLeakFraction;

    const double feature_m = static_cast<double>(nm) * 1e-9;
    mc.area = bits * cellAreaF2 * feature_m * feature_m / 0.7;
    return mc;
}

} // namespace camj
