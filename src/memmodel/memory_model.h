/**
 * @file
 * Common result type for the analytical memory models.
 *
 * The paper obtains per-access energy, leakage power and area from the
 * external tools DESTINY (SRAM), NVMExplorer (STT-RAM) and CACTI.
 * Those tools are not available offline, so src/memmodel provides
 * parametric analytical substitutes that preserve the behavior CamJ
 * actually consumes: per-access energy and leakage grow with capacity
 * and shrink with process node, and STT-RAM trades high write energy
 * for near-zero standby leakage. See DESIGN.md Sec. 3.
 */

#ifndef CAMJ_MEMMODEL_MEMORY_MODEL_H
#define CAMJ_MEMMODEL_MEMORY_MODEL_H

#include <cstdint>

#include "common/units.h"

namespace camj
{

/** Per-array electrical characteristics produced by a memory model. */
struct MemoryCharacteristics
{
    /** Energy of reading one word [J]. */
    Energy readEnergyPerWord = 0.0;
    /** Energy of writing one word [J]. */
    Energy writeEnergyPerWord = 0.0;
    /** Standby leakage power of the whole array [W]. */
    Power leakagePower = 0.0;
    /** Macro area including peripherals [m^2]. */
    Area area = 0.0;
    /** Capacity [bytes], echoed back for reporting. */
    int64_t capacityBytes = 0;
    /** Word width [bits], echoed back for reporting. */
    int wordBits = 0;
};

} // namespace camj

#endif // CAMJ_MEMMODEL_MEMORY_MODEL_H
