#include "memmodel/regfile.h"

#include "common/logging.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj
{

namespace
{

// 65 nm anchors: flip-flop read is a mux traversal, write clocks the
// cell. Capacity-independent per-bit cost (no long bitlines), but a
// much larger cell than SRAM.
constexpr Energy readBit65 = 8e-15;
constexpr Energy writeBit65 = 14e-15;
constexpr Area cellArea65 = 4.5e-12;
constexpr double leakVsSramCell = 2.5;

} // namespace

MemoryCharacteristics
regfileModel(int64_t capacity_bytes, int word_bits, int nm)
{
    if (capacity_bytes <= 0 || capacity_bytes > 4096)
        fatal("regfileModel: capacity %lld B outside (0, 4096]",
              static_cast<long long>(capacity_bytes));
    if (word_bits < 1 || word_bits > 256)
        fatal("regfileModel: word width %d outside [1, 256]", word_bits);

    const double bits = static_cast<double>(capacity_bytes) * 8.0;
    const NodeParams node = nodeParams(nm);

    MemoryCharacteristics mc;
    mc.capacityBytes = capacity_bytes;
    mc.wordBits = word_bits;
    mc.readEnergyPerWord = scaleEnergy(readBit65 * word_bits, 65, nm);
    mc.writeEnergyPerWord = scaleEnergy(writeBit65 * word_bits, 65, nm);
    mc.leakagePower = bits * node.sramLeakPerBit * leakVsSramCell;
    mc.area = bits * scaleArea(cellArea65, 65, nm);
    return mc;
}

} // namespace camj
