#include "memmodel/dram.h"

#include <cmath>

#include "common/logging.h"

namespace camj
{

DramEnergy
dramEnergyPerFrame(const DramTraffic &traffic, Time frame_time,
                   const DramParams &params)
{
    if (traffic.readBytes < 0 || traffic.writeBytes < 0)
        fatal("dramEnergyPerFrame: negative byte counts");
    if (traffic.rowHitRate < 0.0 || traffic.rowHitRate > 1.0)
        fatal("dramEnergyPerFrame: row hit rate %g outside [0, 1]",
              traffic.rowHitRate);
    if (traffic.activeFraction < 0.0 || traffic.activeFraction > 1.0)
        fatal("dramEnergyPerFrame: active fraction %g outside [0, 1]",
              traffic.activeFraction);
    if (frame_time <= 0.0)
        fatal("dramEnergyPerFrame: non-positive frame time");
    if (params.burstBytes <= 0 || params.rowBytes <= 0)
        fatal("dramEnergyPerFrame: invalid device geometry");

    const double read_bursts =
        std::ceil(static_cast<double>(traffic.readBytes) /
                  params.burstBytes);
    const double write_bursts =
        std::ceil(static_cast<double>(traffic.writeBytes) /
                  params.burstBytes);

    // Every row miss costs an activate/precharge pair.
    const double total_bursts = read_bursts + write_bursts;
    const double activates = total_bursts * (1.0 - traffic.rowHitRate);

    DramEnergy e;
    e.activatePart = activates * params.activateEnergy;
    e.burstPart = read_bursts * params.readBurstEnergy +
                  write_bursts * params.writeBurstEnergy;
    e.backgroundPart =
        frame_time * (traffic.activeFraction * params.backgroundPower +
                      (1.0 - traffic.activeFraction) *
                          params.selfRefreshPower);
    e.total = e.activatePart + e.burstPart + e.backgroundPart;
    return e;
}

} // namespace camj
