#include "memmodel/sram.h"

#include <cmath>

#include "common/logging.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

namespace camj
{

namespace
{

// 65 nm anchors. Per-bit dynamic read energy:
//   e_bit = readBitBase + readBitSqrt * sqrt(total_bits)
constexpr Energy readBitBase65 = 45e-15;
constexpr Energy readBitSqrt65 = 0.2e-15;

// Writes drive both bitlines rail-to-rail; slightly costlier.
constexpr double writeFactor = 1.15;

// 6T bit cell area at 65 nm and array area efficiency.
constexpr Area bitcellArea65 = 0.525e-12;
constexpr double arrayEfficiency = 0.7;

} // namespace

MemoryCharacteristics
sramModel(int64_t capacity_bytes, int word_bits, int nm)
{
    if (capacity_bytes <= 0)
        fatal("sramModel: capacity must be positive (got %lld B)",
              static_cast<long long>(capacity_bytes));
    if (word_bits < 1 || word_bits > 1024)
        fatal("sramModel: word width %d outside [1, 1024] bits", word_bits);

    const double bits = static_cast<double>(capacity_bytes) * 8.0;
    if (static_cast<double>(word_bits) > bits)
        fatal("sramModel: word (%d b) wider than the array (%g b)",
              word_bits, bits);

    const NodeParams node = nodeParams(nm);

    Energy read_bit_65 = readBitBase65 + readBitSqrt65 * std::sqrt(bits);
    Energy read_word_65 = read_bit_65 * word_bits;

    MemoryCharacteristics mc;
    mc.capacityBytes = capacity_bytes;
    mc.wordBits = word_bits;
    mc.readEnergyPerWord = scaleEnergy(read_word_65, 65, nm);
    mc.writeEnergyPerWord = mc.readEnergyPerWord * writeFactor;
    mc.leakagePower = bits * node.sramLeakPerBit;
    mc.area = bits * scaleArea(bitcellArea65, 65, nm) / arrayEfficiency;
    return mc;
}

} // namespace camj
