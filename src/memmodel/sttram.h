/**
 * @file
 * Analytical STT-RAM model (NVMExplorer substitute).
 *
 * Captures the property Sec. 6.2 of the paper relies on: STT-RAM has
 * near-zero standby leakage (no supply needed to retain state) at the
 * cost of a much higher per-bit write energy, and a denser bit cell
 * than 6T SRAM. Like NVMExplorer, the model rejects arrays smaller
 * than 4 KB (the paper notes its 2 KB Rhythmic buffer has no STT-RAM
 * result for exactly this reason).
 */

#ifndef CAMJ_MEMMODEL_STTRAM_H
#define CAMJ_MEMMODEL_STTRAM_H

#include "memmodel/memory_model.h"

namespace camj
{

/** Smallest array the STT-RAM model supports [bytes]. */
constexpr int64_t sttramMinCapacityBytes = 4096;

/**
 * Characterize an STT-RAM array.
 *
 * @param capacity_bytes Array capacity; must be >= 4 KB.
 * @param word_bits Word width in bits; must be in [1, 1024].
 * @param nm Process node in nanometers.
 * @throws ConfigError on out-of-range arguments, including arrays
 *         below the 4 KB NVMExplorer-compatible minimum.
 */
MemoryCharacteristics sttramModel(int64_t capacity_bytes, int word_bits,
                                  int nm);

} // namespace camj

#endif // CAMJ_MEMMODEL_STTRAM_H
