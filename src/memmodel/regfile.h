/**
 * @file
 * Small register-file model for PE-local storage (the "RegFile" in the
 * paper's Fig. 5 edge unit and the scratch registers of systolic PEs).
 */

#ifndef CAMJ_MEMMODEL_REGFILE_H
#define CAMJ_MEMMODEL_REGFILE_H

#include "memmodel/memory_model.h"

namespace camj
{

/**
 * Characterize a flip-flop based register file.
 *
 * @param capacity_bytes Capacity; must be in (0, 4096].
 * @param word_bits Word width in bits; must be in [1, 256].
 * @param nm Process node in nanometers.
 * @throws ConfigError on out-of-range arguments.
 */
MemoryCharacteristics regfileModel(int64_t capacity_bytes, int word_bits,
                                   int nm);

} // namespace camj

#endif // CAMJ_MEMMODEL_REGFILE_H
