/**
 * @file
 * Analytical 6T SRAM model (DESTINY/CACTI substitute).
 *
 * Per-bit access energy is modeled as a constant sense/latch term plus
 * a term growing with the square root of the array capacity (bitline
 * and wordline lengths grow with the side of the array). The 65 nm
 * anchor values are calibrated so that a 64 KB array costs a few pJ
 * per 64-bit word, matching the numbers DESTINY produces for the
 * validation designs in the paper. Leakage uses the per-node SRAM
 * leakage density from the technology table.
 */

#ifndef CAMJ_MEMMODEL_SRAM_H
#define CAMJ_MEMMODEL_SRAM_H

#include "memmodel/memory_model.h"

namespace camj
{

/**
 * Characterize a 6T SRAM array.
 *
 * @param capacity_bytes Array capacity; must be positive.
 * @param word_bits Word (row access) width in bits; must be in [1, 1024].
 * @param nm Process node in nanometers.
 * @throws ConfigError on out-of-range arguments.
 */
MemoryCharacteristics sramModel(int64_t capacity_bytes, int word_bits,
                                int nm);

} // namespace camj

#endif // CAMJ_MEMMODEL_SRAM_H
