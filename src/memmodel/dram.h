/**
 * @file
 * Analytical DRAM energy model (DRAMPower substitute).
 *
 * Sec. 3.3 of the paper: "CamJ does accept as input a memory trace
 * offline collected for an irregular algorithm, which can then be
 * integrated with external tools such as DRAMPower to estimate the
 * energy consumption." DRAMPower is not available offline, so this
 * module provides the per-command energy model it would supply:
 * activate/precharge row energy, per-word read/write energy, refresh
 * and background power — the LPDDR4-class numbers relevant to
 * stacked-DRAM CIS like the Sony IMX400 three-layer sensor.
 */

#ifndef CAMJ_MEMMODEL_DRAM_H
#define CAMJ_MEMMODEL_DRAM_H

#include <cstdint>

#include "common/units.h"

namespace camj
{

/** Per-command/per-state energy parameters of a DRAM device. */
struct DramParams
{
    /** Row activate + precharge energy [J]. */
    Energy activateEnergy = 1.2e-9;
    /** Energy per 32-byte read burst [J]. */
    Energy readBurstEnergy = 0.5e-9;
    /** Energy per 32-byte write burst [J]. */
    Energy writeBurstEnergy = 0.55e-9;
    /** Bytes per burst. */
    int burstBytes = 32;
    /** Row (page) size [bytes]; sequential accesses within a row
     *  need no new activate. */
    int64_t rowBytes = 2048;
    /** Background + refresh power while powered [W]. */
    Power backgroundPower = 6e-3;
    /** Background power in self-refresh (retention) mode [W]. */
    Power selfRefreshPower = 0.4e-3;
};

/** Access pattern statistics of a traffic aggregate. */
struct DramTraffic
{
    /** Bytes read per frame. */
    int64_t readBytes = 0;
    /** Bytes written per frame. */
    int64_t writeBytes = 0;
    /** Row-buffer hit rate in [0, 1]; streaming image traffic is
     *  near 1, irregular traffic near 0. */
    double rowHitRate = 0.9;
    /** Fraction of the frame spent out of self-refresh. */
    double activeFraction = 1.0;
};

/** Energy breakdown of one frame of DRAM traffic. */
struct DramEnergy
{
    Energy activatePart = 0.0;
    Energy burstPart = 0.0;
    Energy backgroundPart = 0.0;
    Energy total = 0.0;
};

/**
 * Energy of one frame of DRAM traffic (Eq. 16's DRAM analogue).
 *
 * @param traffic Aggregate access statistics; counts must be
 *        non-negative and rates in [0, 1].
 * @param frame_time Frame duration [s]; positive.
 * @throws ConfigError on invalid inputs.
 */
DramEnergy dramEnergyPerFrame(const DramTraffic &traffic,
                              Time frame_time,
                              const DramParams &params = {});

} // namespace camj

#endif // CAMJ_MEMMODEL_DRAM_H
