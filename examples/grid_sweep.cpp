/**
 * @file
 * Example: parameterized spec templates — a SweepGrid declared inside
 * the spec document, expanded lazily, streamed into a top-K sink.
 *
 * One base DesignSpec plus a "sweepGrid" block of named axes defines
 * a 108-point design-space study in a single JSON file. The
 * GridSpecSource expands the cartesian product one point at a time
 * (the grid never exists as a vector), the SweepEngine evaluates
 * points across its worker pool reusing materialized components
 * across spec deltas, and the TopKSink keeps only the five most
 * energy-efficient feasible designs.
 *
 * Build & run:  ./build/examples/grid_sweep
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "explore/sweep.h"
#include "spec/grid.h"
#include "spec/samples.h"

using namespace camj;

int
main()
{
    setLoggingEnabled(false);

    // The study: the canonical always-on detector swept over frame
    // rate, buffer process node, and buffer duty cycle. In a real
    // workflow this whole document lives in one JSON file
    // (spec::loadSweepFile) — examples/detector_sweep.json is exactly
    // this document.
    spec::SweepDocument doc = spec::sampleDetectorStudy();

    std::printf("sweepGrid block (as it appears in the spec file):\n%s\n",
                spec::gridToJson(doc.grid).dump(2).c_str());

    spec::GridSpecSource source = doc.source();
    std::printf("grid: %zu axes, %zu design points, expanded "
                "lazily\n\n", doc.grid.axes.size(),
                doc.grid.points());

    SweepOptions options;
    options.threads = 4;
    options.incremental = true; // staged re-eval across grid deltas
    SweepEngine engine(options);

    TopKSink best(5);
    StreamStats stats = engine.runStream(source, best);

    std::printf("evaluated %zu points (%zu kept, %zu dropped as "
                "infeasible or beaten)\n\n", stats.delivered,
                best.best().size(), best.dropped());
    std::printf("top-%zu most energy-efficient designs:\n",
                best.best().size());
    std::printf("%-44s %14s\n", "design point", "E/frame[uJ]");
    for (const SweepResult &r : best.best())
        std::printf("%-44s %14.3f\n", r.designName.c_str(),
                    r.report.total() / units::uJ);

    std::printf("\neach point's name encodes its grid coordinates, "
                "so any winner can be re-derived (or diffed against "
                "the base with spec_diff) without storing the "
                "expanded specs.\n");
    return 0;
}
