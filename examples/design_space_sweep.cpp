/**
 * @file
 * Example: design-space exploration through the SweepEngine.
 *
 * Sweeps a custom always-on detection sensor over frame rate and
 * process node. Each design point is a DesignSpec (pure data); the
 * SweepEngine evaluates the whole grid across a thread pool and
 * returns structured SweepResults — energy per frame, power density,
 * the thermal SNR penalty (the Sec. 6.2 extension), and a feasibility
 * *verdict* for the configurations whose digital latency overruns the
 * frame budget. No ConfigError handling in sight: infeasibility is
 * data, exactly the feedback loop of Fig. 4 at batch scale.
 *
 * Build & run:  ./build/examples/design_space_sweep
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "explore/sweep.h"
#include "spec/samples.h"

using namespace camj;

int
main()
{
    setLoggingEnabled(false);

    // The sweep grid: every (node, fps) pair as one DesignSpec
    // (the canonical sample detector of src/spec/samples.h).
    const std::vector<int> nodes = {180, 110, 65, 45};
    const std::vector<double> rates = {1.0, 30.0, 120.0, 960.0,
                                       3840.0};
    std::vector<spec::DesignSpec> grid =
        spec::sampleDetectorGrid(nodes, rates);

    // Evaluate the whole grid in parallel, with the noise extension on.
    SweepOptions options;
    options.threads = 4;
    options.sim.withNoise = true;
    SweepEngine engine(options);
    std::vector<SweepResult> results = engine.run(grid);

    std::printf("Design-space sweep: always-on detector, FPS x node "
                "(%zu points, %d threads)\n\n", grid.size(),
                engine.effectiveThreads(grid.size()));
    std::printf("%-8s %-8s %14s %12s %16s %14s\n", "node", "FPS",
                "E/frame[uJ]", "power[uW]", "density[mW/mm2]",
                "SNR-pen[mdB]");

    size_t i = 0;
    for (int node : nodes) {
        for (double fps : rates) {
            const SweepResult &r = results[i++];
            if (r.feasible) {
                std::printf("%-8d %-8.0f %14.3f %12.2f %16.4f "
                            "%14.3f\n", node, fps,
                            r.report.total() / units::uJ,
                            r.report.total() * fps / units::uW,
                            r.powerDensityMwPerMm2(),
                            1e3 * r.snrPenaltyDb);
            } else {
                std::printf("%-8d %-8.0f %14s\n", node, fps,
                            "-- infeasible: misses frame deadline --");
            }
        }
    }

    std::printf("\nthe infeasible rows are CamJ's pre-simulation "
                "checks firing: at extreme frame rates the digital "
                "classifier's latency exceeds the frame budget, so "
                "the design must be reworked (Fig. 4's feedback "
                "loop). The sweep returns verdicts, not exceptions.\n");
    return 0;
}
