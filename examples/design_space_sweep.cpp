/**
 * @file
 * Example: design-space exploration through the streaming SweepEngine.
 *
 * Sweeps a custom always-on detection sensor over frame rate and
 * process node. Each design point is a DesignSpec (pure data),
 * generated LAZILY as workers pull it from a SpecSource; results
 * stream back through an in-order sink and print as they complete —
 * energy per frame, power density, the thermal SNR penalty (the
 * Sec. 6.2 extension), and a feasibility *verdict* for the
 * configurations whose digital latency overruns the frame budget. No
 * ConfigError handling in sight: infeasibility is data, exactly the
 * feedback loop of Fig. 4 at streaming scale.
 *
 * Build & run:  ./build/examples/design_space_sweep
 */

#include <cstdio>
#include <optional>
#include <vector>

#include "common/units.h"
#include "explore/sweep.h"
#include "spec/samples.h"

using namespace camj;

namespace
{

const std::vector<int> kNodes = {180, 110, 65, 45};
const std::vector<double> kRates = {1.0, 30.0, 120.0, 960.0, 3840.0};

} // namespace

int
main()
{
    setLoggingEnabled(false);

    // The sweep grid: every (node, fps) pair as one DesignSpec (the
    // canonical sample detector of src/spec/samples.h), built on
    // demand — the full grid never exists as a vector.
    const size_t total = kNodes.size() * kRates.size();
    spec::GeneratorSpecSource source(
        [](size_t i) -> std::optional<spec::DesignSpec> {
            return spec::sampleDetectorSpec(
                kRates[i % kRates.size()], kNodes[i / kRates.size()]);
        },
        total);

    SweepOptions options;
    options.threads = 4;
    options.sim.withNoise = true;
    options.incremental = true; // staged re-eval across fps deltas
    SweepEngine engine(options);

    std::printf("Design-space sweep: always-on detector, FPS x node "
                "(%zu points, %d threads, streaming)\n\n", total,
                engine.effectiveThreads(total));
    std::printf("%-8s %-8s %14s %12s %16s %14s\n", "node", "FPS",
                "E/frame[uJ]", "power[uW]", "density[mW/mm2]",
                "SNR-pen[mdB]");

    // Rows print the moment they (and all earlier rows) are done.
    double best_uw = 1e30;
    std::string best_name;
    CallbackSink print([&](SweepResult r) {
        const int node = kNodes[r.index / kRates.size()];
        const double fps = kRates[r.index % kRates.size()];
        if (r.feasible) {
            const double uw = r.report.total() * fps / units::uW;
            std::printf("%-8d %-8.0f %14.3f %12.2f %16.4f %14.3f\n",
                        node, fps, r.report.total() / units::uJ, uw,
                        r.powerDensityMwPerMm2(),
                        1e3 * r.snrPenaltyDb);
            if (uw < best_uw) {
                best_uw = uw;
                best_name = r.designName;
            }
        } else {
            std::printf("%-8d %-8.0f %14s\n", node, fps,
                        "-- infeasible: misses frame deadline --");
        }
        return true;
    });
    InOrderSink inorder(print);
    StreamStats stats = engine.runStream(source, inorder);

    std::printf("\n%zu points evaluated; lowest average power: %s "
                "(%.2f uW)\n", stats.delivered, best_name.c_str(),
                best_uw);
    std::printf("the infeasible rows are CamJ's pre-simulation "
                "checks firing: at extreme frame rates the digital "
                "classifier's latency exceeds the frame budget, so "
                "the design must be reworked (Fig. 4's feedback "
                "loop). The sweep streams verdicts, not "
                "exceptions.\n");
    return 0;
}
