/**
 * @file
 * Example: using CamJ inside a design-space-exploration loop.
 *
 * Sweeps a custom always-on detection sensor over frame rate and
 * process node, records energy per frame, power density and the
 * thermal SNR penalty (the Sec. 6.2 extension), and reports the
 * feasibility boundary: configurations whose digital latency
 * overruns the frame budget fail CamJ's stall/deadline checks and
 * surface as ConfigError — exactly the feedback loop of Fig. 4.
 *
 * Build & run:  ./build/examples/design_space_sweep
 */

#include <cstdio>
#include <string>

#include "common/units.h"
#include "core/design.h"
#include "noise/noise.h"
#include "tech/process_node.h"
#include "tech/scaling.h"

using namespace camj;

namespace
{

/** A QVGA always-on sensor with a small in-sensor classifier. */
Design
buildDetector(double fps, int node_nm)
{
    Design d({.name = "detector-" + std::to_string(node_nm) + "nm",
              .fps = fps, .digitalClock = 20e6});

    SwGraph &sw = d.sw();
    StageId in = sw.addStage({.name = "Input", .op = StageOp::Input,
                              .outputSize = {320, 240, 1}});
    StageId bin = sw.addStage({.name = "Bin", .op = StageOp::Binning,
                               .inputSize = {320, 240, 1},
                               .outputSize = {80, 60, 1},
                               .kernel = {4, 4, 1},
                               .stride = {4, 4, 1}});
    StageId conv = sw.addStage({.name = "Conv", .op = StageOp::Conv2d,
                                .inputSize = {80, 60, 1},
                                .outputSize = {78, 58, 8},
                                .kernel = {3, 3, 1},
                                .stride = {1, 1, 1}});
    StageId fc = sw.addStage({.name = "Classify",
                              .op = StageOp::FullyConnected,
                              .inputSize = {78, 58, 8},
                              .outputSize = {4, 1, 1}});
    sw.connect(in, bin);
    sw.connect(bin, conv);
    sw.connect(conv, fc);

    const NodeParams node = nodeParams(node_nm);
    ApsParams aps;
    aps.vdda = node.vdda;
    aps.pixelsPerComponent = 16;
    AnalogArrayParams pa;
    pa.name = "PixelArray";
    pa.numComponents = {80, 60, 1};
    pa.inputShape = {1, 80, 1};
    pa.outputShape = {1, 80, 1};
    pa.componentArea = 16.0 * 9.0 * units::um2;
    d.addAnalogArray(AnalogArray(pa, makeAps4T(aps)),
                     AnalogRole::Sensing);

    AnalogArrayParams aa;
    aa.name = "Adc";
    aa.numComponents = {80, 1, 1};
    aa.inputShape = {1, 80, 1};
    aa.outputShape = {1, 80, 1};
    aa.componentArea = 1e-9;
    d.addAnalogArray(AnalogArray(aa, makeColumnAdc({.bits = 8})),
                     AnalogRole::Adc);

    d.addMemory(makeSramMemory("ActBuf", Layer::Sensor,
                               MemoryKind::DoubleBuffer, 16384, 64,
                               node_nm, 0.5));
    SystolicArrayParams sp;
    sp.name = "Classifier";
    sp.layer = Layer::Sensor;
    sp.rows = 8;
    sp.cols = 8;
    sp.energyPerMac = macEnergy8bit(node_nm);
    sp.peArea = macArea8bit(node_nm);
    d.addSystolicArray(SystolicArray(sp));
    d.setAdcOutput("ActBuf");
    d.connectMemoryToUnit("ActBuf", "Classifier");

    d.setMipi(makeMipiCsi2());
    d.setPipelineOutputBytes(4); // class label only

    Mapping &m = d.mapping();
    m.map("Input", "PixelArray");
    m.map("Bin", "PixelArray");
    m.map("Conv", "Classifier");
    m.map("Classify", "Classifier");
    return d;
}

} // namespace

int
main()
{
    setLoggingEnabled(false);
    NoiseModel noise;

    std::printf("Design-space sweep: always-on detector, FPS x "
                "node\n\n");
    std::printf("%-8s %-8s %14s %12s %16s %14s\n", "node", "FPS",
                "E/frame[uJ]", "power[uW]", "density[mW/mm2]",
                "SNR-pen[mdB]");

    for (int node : {180, 110, 65, 45}) {
        for (double fps : {1.0, 30.0, 120.0, 960.0, 3840.0}) {
            try {
                Design d = buildDetector(fps, node);
                EnergyReport r = d.simulate();
                double penalty_mdb =
                    1e3 * noise.snrPenaltyDb(r.powerDensity(),
                                             0.5 / fps);
                std::printf("%-8d %-8.0f %14.3f %12.2f %16.4f "
                            "%14.3f\n", node, fps,
                            r.total() / units::uJ,
                            r.total() * fps / units::uW,
                            r.powerDensity() * 1e-3, penalty_mdb);
            } catch (const ConfigError &) {
                std::printf("%-8d %-8.0f %14s %12s %16s %14s\n", node,
                            fps, "-- infeasible: misses frame "
                            "deadline --", "", "", "");
            }
        }
    }

    std::printf("\nthe infeasible rows are CamJ's pre-simulation "
                "checks firing: at extreme frame rates the digital "
                "classifier's latency exceeds the frame budget, so "
                "the design must be reworked (Fig. 4's feedback "
                "loop).\n");
    return 0;
}
