/**
 * @file
 * Quickstart: the paper's running example (Fig. 5 / Fig. 6).
 *
 * A conceptual CIS with a 32x32 pixel array: every 2x2 tile is
 * charge-binned to a 16x16 image, a digital edge-detection unit
 * consumes it through a 3-row line buffer, and the edge map leaves
 * the sensor over MIPI CSI-2. The example walks through the three
 * decoupled descriptions (algorithm, hardware, mapping), runs the
 * simulation, and prints the per-unit energy report and the Fig. 6
 * delay estimate.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/design.h"

using namespace camj;

int
main()
{
    // ------------------------------------------------------------------
    // Design container: 30 fps target, 10 MHz digital clock.
    // ------------------------------------------------------------------
    Design design({.name = "fig5-quickstart", .fps = 30.0,
                   .digitalClock = 10e6});

    // ------------------------------------------------------------------
    // Algorithm description (camj_sw_config in the paper).
    // ------------------------------------------------------------------
    SwGraph &sw = design.sw();
    StageId input = sw.addStage({.name = "Input",
                                 .op = StageOp::Input,
                                 .outputSize = {32, 32, 1},
                                 .bitDepth = 8});
    StageId binning = sw.addStage({.name = "Binning",
                                   .op = StageOp::Binning,
                                   .inputSize = {32, 32, 1},
                                   .outputSize = {16, 16, 1},
                                   .kernel = {2, 2, 1},
                                   .stride = {2, 2, 1}});
    StageId edge = sw.addStage({.name = "EdgeDetection",
                                .op = StageOp::DepthwiseConv2d,
                                .inputSize = {16, 16, 1},
                                .outputSize = {14, 14, 1},
                                .kernel = {3, 3, 1},
                                .stride = {1, 1, 1}});
    sw.connect(input, binning);
    sw.connect(binning, edge);

    // ------------------------------------------------------------------
    // Hardware description (camj_hw_config): analog part.
    // ------------------------------------------------------------------
    {
        // Each component is a binning pixel: four 4T-APS sharing one
        // readout (the paper's impl = (APS(4, ...), 4)).
        ApsParams aps;
        aps.pixelsPerComponent = 4;
        AnalogArrayParams ap;
        ap.name = "PixelArray";
        ap.numComponents = {16, 16, 1};
        ap.inputShape = {1, 32, 1};
        ap.outputShape = {1, 16, 1};
        ap.componentArea = 4.0 * 9.0 * units::um2; // 3 um pitch
        design.addAnalogArray(AnalogArray(ap, makeAps4T(aps)),
                              AnalogRole::Sensing);
    }
    {
        AnalogArrayParams ap;
        ap.name = "ADCArray";
        ap.numComponents = {16, 1, 1};
        ap.inputShape = {1, 16, 1};
        ap.outputShape = {1, 16, 1};
        ap.componentArea = 1.0e-9;
        design.addAnalogArray(AnalogArray(ap,
                                          makeColumnAdc({.bits = 10})),
                              AnalogRole::Adc);
    }

    // Digital part: a 3x16 line buffer and a 2-stage edge unit that
    // reads a 1x3 pixel column per cycle (Fig. 5's numbers).
    design.addMemory(makeSramMemory("LineBuffer", Layer::Sensor,
                                    MemoryKind::LineBuffer, 3 * 16, 8,
                                    65, 1.0));
    {
        ComputeUnitParams cu;
        cu.name = "EdgeUnit";
        cu.layer = Layer::Sensor;
        cu.inputPixelsPerCycle = {1, 3, 1};
        cu.outputPixelsPerCycle = {1, 1, 1};
        cu.energyPerCycle = 3.0 * units::pJ;
        cu.numStages = 2;
        cu.opsPerCycle = 9;
        design.addComputeUnit(ComputeUnit(cu));
    }
    design.setAdcOutput("LineBuffer");
    design.connectMemoryToUnit("LineBuffer", "EdgeUnit");
    design.setMipi(makeMipiCsi2());

    // ------------------------------------------------------------------
    // Mapping (camj_mapping).
    // ------------------------------------------------------------------
    design.mapping().map("Input", "PixelArray");
    design.mapping().map("Binning", "PixelArray");
    design.mapping().map("EdgeDetection", "EdgeUnit");

    // ------------------------------------------------------------------
    // Simulate and report.
    // ------------------------------------------------------------------
    EnergyReport report = design.simulate();
    std::printf("%s\n", report.pretty().c_str());

    std::printf("Fig. 6 relation: %d x T_A + T_D = T_FR\n",
                report.numAnalogSlots);
    std::printf("  T_A = %s, T_D = %s, T_FR = %s\n",
                formatTime(report.analogUnitTime).c_str(),
                formatTime(report.digitalLatency).c_str(),
                formatTime(report.frameTime).c_str());
    return 0;
}
