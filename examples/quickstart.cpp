/**
 * @file
 * Quickstart: the paper's running example (Fig. 5 / Fig. 6), written
 * against the DesignBuilder front-end.
 *
 * A conceptual CIS with a 32x32 pixel array: every 2x2 tile is
 * charge-binned to a 16x16 image, a digital edge-detection unit
 * consumes it through a 3-row line buffer, and the edge map leaves
 * the sensor over MIPI CSI-2. The builder assembles the three
 * decoupled descriptions (algorithm, hardware, mapping) with
 * call-site validation, the Simulator runs the Sec. 4 methodology,
 * and the resulting DesignSpec round-trips through JSON — designs
 * are data.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "explore/simulator.h"
#include "spec/builder.h"

using namespace camj;

int
main()
{
    // ------------------------------------------------------------------
    // The three decoupled descriptions, assembled fluently: algorithm
    // stages (with producer edges), the analog chain, the digital
    // pipeline, communication, and the mapping.
    // ------------------------------------------------------------------
    ApsParams aps;
    aps.pixelsPerComponent = 4; // four 4T-APS share one readout
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    pixel.aps = aps;
    spec::ComponentSpec adc;
    adc.kind = spec::ComponentKind::ColumnAdc;
    adc.adc = {.bits = 10};

    spec::DesignSpec design =
        spec::DesignBuilder("fig5-quickstart")
            .fps(30.0)
            .digitalClock(10e6)
            // Algorithm description (camj_sw_config in the paper).
            .inputStage("Input", {32, 32, 1})
            .stage({.name = "Binning",
                    .op = StageOp::Binning,
                    .inputSize = {32, 32, 1},
                    .outputSize = {16, 16, 1},
                    .kernel = {2, 2, 1},
                    .stride = {2, 2, 1}},
                   {"Input"})
            .stage({.name = "EdgeDetection",
                    .op = StageOp::DepthwiseConv2d,
                    .inputSize = {16, 16, 1},
                    .outputSize = {14, 14, 1},
                    .kernel = {3, 3, 1},
                    .stride = {1, 1, 1}},
                   {"Binning"})
            // Hardware description: analog chain...
            .analogArray({.name = "PixelArray",
                          .role = AnalogRole::Sensing,
                          .numComponents = {16, 16, 1},
                          .inputShape = {1, 32, 1},
                          .outputShape = {1, 16, 1},
                          .componentArea = 4.0 * 9.0 * units::um2,
                          .component = pixel})
            .analogArray({.name = "ADCArray",
                          .role = AnalogRole::Adc,
                          .numComponents = {16, 1, 1},
                          .inputShape = {1, 16, 1},
                          .outputShape = {1, 16, 1},
                          .componentArea = 1.0e-9,
                          .component = adc})
            // ...and the digital pipeline of Fig. 5: a 3x16 line
            // buffer and a 2-stage edge unit reading 1x3 per cycle.
            .sram("LineBuffer", Layer::Sensor, MemoryKind::LineBuffer,
                  3 * 16, 8, 65, 1.0)
            .computeUnit({.name = "EdgeUnit",
                          .layer = Layer::Sensor,
                          .inputPixelsPerCycle = {1, 3, 1},
                          .outputPixelsPerCycle = {1, 1, 1},
                          .energyPerCycle = 3.0 * units::pJ,
                          .numStages = 2,
                          .opsPerCycle = 9},
                         {"LineBuffer"})
            .adcOutput("LineBuffer")
            .mipi()
            // Mapping (camj_mapping).
            .map("Input", "PixelArray")
            .map("Binning", "PixelArray")
            .map("EdgeDetection", "EdgeUnit")
            .spec();

    // ------------------------------------------------------------------
    // Simulate and report.
    // ------------------------------------------------------------------
    Simulator simulator;
    EnergyReport report = simulator.simulate(design);
    std::printf("%s\n", report.pretty().c_str());

    std::printf("Fig. 6 relation: %d x T_A + T_D = T_FR\n",
                report.numAnalogSlots);
    std::printf("  T_A = %s, T_D = %s, T_FR = %s\n",
                formatTime(report.analogUnitTime).c_str(),
                formatTime(report.digitalLatency).c_str(),
                formatTime(report.frameTime).c_str());

    // ------------------------------------------------------------------
    // The design is data: serialize it, reload it, simulate again.
    // ------------------------------------------------------------------
    std::string doc = spec::toJson(design);
    spec::DesignSpec reloaded = spec::fromJson(doc);
    EnergyReport again = simulator.simulate(reloaded);
    std::printf("\nJSON round-trip: %zu-byte spec re-simulates to "
                "%s/frame (%s)\n", doc.size(),
                formatEnergy(again.total()).c_str(),
                again.total() == report.total() ? "bit-identical"
                                                : "MISMATCH");
    return 0;
}
