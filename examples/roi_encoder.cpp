/**
 * @file
 * Example: exploring in-sensor vs off-sensor placement for an
 * ROI-based image encoder (the Rhythmic Pixel Regions workload of
 * Sec. 6.1).
 *
 * This is the core CamJ loop a designer runs: build the workload
 * once, then re-simulate it under different placements and process
 * nodes, comparing the category breakdowns. The decoupled
 * algorithm/hardware/mapping descriptions make each variant a
 * one-line change.
 *
 * Build & run:  ./build/examples/roi_encoder
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "usecases/explorer.h"
#include "usecases/rhythmic.h"

using namespace camj;

int
main()
{
    setLoggingEnabled(false);

    std::printf("ROI encoder placement exploration (1280x720 @ 30 "
                "fps, ~7.4M ops/frame, ROI halves the output)\n\n");

    std::vector<BreakdownRow> rows;
    double best_total = 1e30;
    std::string best_name;

    for (int cis_node : {130, 65}) {
        for (SensorVariant variant : {SensorVariant::TwoDOff,
                                      SensorVariant::TwoDIn,
                                      SensorVariant::ThreeDIn}) {
            auto design = buildRhythmic(variant, cis_node);
            EnergyReport report = design->simulate();

            std::string label = std::string(sensorVariantName(variant)) +
                                " @" + std::to_string(cis_node) + "nm";
            rows.push_back(breakdownOf(label, report));

            if (report.total() < best_total) {
                best_total = report.total();
                best_name = label;
            }
        }
    }

    std::printf("%s\n", formatBreakdownTable(rows).c_str());
    std::printf("cheapest configuration: %s (%.1f uJ/frame, %.2f mW "
                "at 30 fps)\n", best_name.c_str(),
                best_total / units::uJ, best_total * 30.0 / units::mW);

    std::printf("\ntakeaway: for this communication-dominated "
                "workload, cutting the MIPI volume in half inside the "
                "sensor beats shipping the full frame to the SoC — "
                "and a stacked compute die removes the old-node "
                "compute tax on top (the paper's Finding 1/2).\n");
    return 0;
}
