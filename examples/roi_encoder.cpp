/**
 * @file
 * Example: exploring in-sensor vs off-sensor placement for an
 * ROI-based image encoder (the Rhythmic Pixel Regions workload of
 * Sec. 6.1), using the Simulator front-end.
 *
 * This is the core CamJ loop a designer runs: build the workload
 * once, then re-evaluate it under different placements and process
 * nodes, comparing the category breakdowns. The Simulator returns
 * feasibility verdicts instead of throwing, so a sweep over variants
 * needs no exception plumbing.
 *
 * Build & run:  ./build/examples/roi_encoder
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "explore/breakdown.h"
#include "explore/simulator.h"
#include "usecases/rhythmic.h"

using namespace camj;

int
main()
{
    setLoggingEnabled(false);

    std::printf("ROI encoder placement exploration (1280x720 @ 30 "
                "fps, ~7.4M ops/frame, ROI halves the output)\n\n");

    Simulator simulator({.checkMode = CheckMode::Report});

    std::vector<BreakdownRow> rows;
    double best_total = 1e30;
    std::string best_name;

    for (int cis_node : {130, 65}) {
        for (SensorVariant variant : {SensorVariant::TwoDOff,
                                      SensorVariant::TwoDIn,
                                      SensorVariant::ThreeDIn}) {
            auto design = buildRhythmic(variant, cis_node);
            SimulationOutcome outcome = simulator.run(*design);

            std::string label = std::string(sensorVariantName(variant)) +
                                " @" + std::to_string(cis_node) + "nm";
            if (!outcome.feasible) {
                std::printf("%-22s -- infeasible: %s\n", label.c_str(),
                            outcome.error.c_str());
                continue;
            }
            rows.push_back(breakdownOf(label, outcome.report));

            if (outcome.report.total() < best_total) {
                best_total = outcome.report.total();
                best_name = label;
            }
        }
    }

    std::printf("%s\n", formatBreakdownTable(rows).c_str());
    std::printf("cheapest configuration: %s (%.1f uJ/frame, %.2f mW "
                "at 30 fps)\n", best_name.c_str(),
                best_total / units::uJ, best_total * 30.0 / units::mW);

    std::printf("\ntakeaway: for this communication-dominated "
                "workload, cutting the MIPI volume in half inside the "
                "sensor beats shipping the full frame to the SoC — "
                "and a stacked compute die removes the old-node "
                "compute tax on top (the paper's Finding 1/2).\n");
    return 0;
}
