/**
 * @file
 * Example: an event-driven (DVS) sensor front-end.
 *
 * Event pixels only produce data where the scene changes, so the
 * access counts — and therefore the energy — scale with scene
 * activity instead of resolution. This example sweeps the per-frame
 * event rate and compares a DVS design against an equivalent
 * frame-based APS+ADC design, showing where the event-driven
 * architecture wins.
 *
 * Demonstrates: the DVS pixel component, ops-per-output overrides
 * for data-dependent workloads, and sweeping a workload parameter
 * while hardware stays fixed.
 *
 * Build & run:  ./build/examples/event_camera
 */

#include <cstdio>
#include <memory>

#include "common/units.h"
#include "core/design.h"

using namespace camj;

namespace
{

constexpr int64_t kWidth = 320, kHeight = 240;
constexpr double kFps = 100.0; // event cameras run fast

/** Event-driven design: events stream straight into a small FIFO
 *  and a digital event filter; volume scales with activity. */
std::shared_ptr<Design>
buildDvsDesign(double event_fraction)
{
    auto d = std::make_shared<Design>(
        DesignParams{"dvs-camera", kFps, 50e6});

    const int64_t events = static_cast<int64_t>(
        static_cast<double>(kWidth * kHeight) * event_fraction);

    SwGraph &sw = d->sw();
    // The "image" here is the event map; downstream sees only the
    // active pixels. Model the event stream as a CompareSample-style
    // stage whose output volume is the event count.
    StageId in = sw.addStage({.name = "Events", .op = StageOp::Input,
                              .outputSize = {std::max<int64_t>(
                                                 1, events),
                                             1, 1},
                              .bitDepth = 16}); // x,y,polarity packet
    StageId filt = sw.addStage(
        {.name = "NoiseFilter",
         .op = StageOp::Threshold,
         .inputSize = {std::max<int64_t>(1, events), 1, 1},
         .outputSize = {std::max<int64_t>(1, events), 1, 1},
         .bitDepth = 16});
    sw.connect(in, filt);

    // The DVS array: one component per pixel; only event-generating
    // pixels are accessed.
    AnalogArrayParams pa;
    pa.name = "DvsArray";
    pa.numComponents = {kWidth, kHeight, 1};
    pa.inputShape = {1, kWidth, 1};
    pa.outputShape = {1, kWidth, 1};
    pa.componentArea = 18.0 * 18.0 * units::um2; // DVS pixels are big
    d->addAnalogArray(AnalogArray(pa, makeDvsPixel()),
                      AnalogRole::Sensing);

    d->addMemory(makeSramMemory("EventFifo", Layer::Sensor,
                                MemoryKind::Fifo, 4096, 16, 65, 0.5));
    ComputeUnitParams cu;
    cu.name = "EventFilter";
    cu.layer = Layer::Sensor;
    cu.inputPixelsPerCycle = {1, 1, 1};
    cu.outputPixelsPerCycle = {1, 1, 1};
    cu.energyPerCycle = 2e-12;
    cu.numStages = 2;
    d->addComputeUnit(ComputeUnit(cu));
    d->setAdcOutput("EventFifo");
    d->connectMemoryToUnit("EventFifo", "EventFilter");
    d->setMipi(makeMipiCsi2());

    d->mapping().map("Events", "DvsArray");
    d->mapping().map("NoiseFilter", "EventFilter");
    return d;
}

/** Frame-based reference: full APS + ADC readout every frame. */
std::shared_ptr<Design>
buildFrameDesign()
{
    auto d = std::make_shared<Design>(
        DesignParams{"frame-camera", kFps, 50e6});

    SwGraph &sw = d->sw();
    sw.addStage({.name = "Input", .op = StageOp::Input,
                 .outputSize = {kWidth, kHeight, 1}});

    AnalogArrayParams pa;
    pa.name = "PixelArray";
    pa.numComponents = {kWidth, kHeight, 1};
    pa.inputShape = {1, kWidth, 1};
    pa.outputShape = {1, kWidth, 1};
    pa.componentArea = 9.0 * units::um2;
    d->addAnalogArray(AnalogArray(pa, makeAps4T()),
                      AnalogRole::Sensing);
    AnalogArrayParams aa;
    aa.name = "Adc";
    aa.numComponents = {kWidth, 1, 1};
    aa.inputShape = {1, kWidth, 1};
    aa.outputShape = {1, kWidth, 1};
    aa.componentArea = 1e-9;
    d->addAnalogArray(AnalogArray(aa, makeColumnAdc({.bits = 8})),
                      AnalogRole::Adc);
    d->setMipi(makeMipiCsi2());
    d->mapping().map("Input", "PixelArray");
    return d;
}

} // namespace

int
main()
{
    setLoggingEnabled(false);

    EnergyReport frame = buildFrameDesign()->simulate();
    std::printf("Event camera vs frame camera (320x240 @ %.0f fps)\n\n",
                kFps);
    std::printf("frame-based reference: %.2f uJ/frame (%.2f mW)\n\n",
                frame.total() / units::uJ,
                frame.total() * kFps / units::mW);

    std::printf("%-16s %14s %14s %10s\n", "scene activity",
                "E/frame[uJ]", "power[mW]", "vs frame");
    for (double activity : {0.001, 0.01, 0.05, 0.10, 0.25, 0.50}) {
        EnergyReport r = buildDvsDesign(activity)->simulate();
        std::printf("%13.1f%%  %14.3f %14.3f %9.2fx\n",
                    100.0 * activity, r.total() / units::uJ,
                    r.total() * kFps / units::mW,
                    r.total() / frame.total());
    }

    std::printf("\ntakeaway: event-driven sensing wins whenever the "
                "scene is sparse — the access counts (and the MIPI "
                "volume) follow the activity, not the resolution. "
                "At high activity the 16-bit event packets overtake "
                "plain 8-bit frames.\n");
    return 0;
}
