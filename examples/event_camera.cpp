/**
 * @file
 * Example: an event-driven (DVS) sensor front-end, on the new API.
 *
 * Event pixels only produce data where the scene changes, so the
 * access counts — and therefore the energy — scale with scene
 * activity instead of resolution. Each activity level becomes one
 * DesignSpec; the SweepEngine evaluates the batch in parallel and
 * the results are compared against an equivalent frame-based
 * APS+ADC design.
 *
 * Demonstrates: the DVS pixel component in a spec, sweeping a
 * workload parameter while hardware stays fixed, and batched
 * evaluation through the SweepEngine.
 *
 * Build & run:  ./build/examples/event_camera
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "explore/sweep.h"
#include "spec/builder.h"

using namespace camj;

namespace
{

constexpr int64_t kWidth = 320, kHeight = 240;
constexpr double kFps = 100.0; // event cameras run fast

/** Event-driven design: events stream straight into a small FIFO
 *  and a digital event filter; volume scales with activity. */
spec::DesignSpec
dvsSpec(double event_fraction)
{
    const int64_t events = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(kWidth * kHeight) *
                                event_fraction));

    spec::ComponentSpec dvs;
    dvs.kind = spec::ComponentKind::DvsPixel;

    // The "image" here is the event map; downstream sees only the
    // active pixels, as 16-bit x,y,polarity packets.
    return spec::DesignBuilder("dvs-camera")
        .fps(kFps)
        .digitalClock(50e6)
        .inputStage("Events", {events, 1, 1}, 16)
        .stage({.name = "NoiseFilter",
                .op = StageOp::Threshold,
                .inputSize = {events, 1, 1},
                .outputSize = {events, 1, 1},
                .bitDepth = 16},
               {"Events"})
        .analogArray({.name = "DvsArray",
                      .role = AnalogRole::Sensing,
                      .numComponents = {kWidth, kHeight, 1},
                      .inputShape = {1, kWidth, 1},
                      .outputShape = {1, kWidth, 1},
                      // DVS pixels are big
                      .componentArea = 18.0 * 18.0 * units::um2,
                      .component = dvs})
        .sram("EventFifo", Layer::Sensor, MemoryKind::Fifo, 4096, 16,
              65, 0.5)
        .computeUnit({.name = "EventFilter",
                      .layer = Layer::Sensor,
                      .inputPixelsPerCycle = {1, 1, 1},
                      .outputPixelsPerCycle = {1, 1, 1},
                      .energyPerCycle = 2e-12,
                      .numStages = 2},
                     {"EventFifo"})
        .adcOutput("EventFifo")
        .mipi()
        .map("Events", "DvsArray")
        .map("NoiseFilter", "EventFilter")
        .spec();
}

/** Frame-based reference: full APS + ADC readout every frame. */
spec::DesignSpec
frameSpec()
{
    spec::ComponentSpec pixel;
    pixel.kind = spec::ComponentKind::Aps4T;
    spec::ComponentSpec adc;
    adc.kind = spec::ComponentKind::ColumnAdc;
    adc.adc = {.bits = 8};

    return spec::DesignBuilder("frame-camera")
        .fps(kFps)
        .digitalClock(50e6)
        .inputStage("Input", {kWidth, kHeight, 1})
        .analogArray({.name = "PixelArray",
                      .role = AnalogRole::Sensing,
                      .numComponents = {kWidth, kHeight, 1},
                      .inputShape = {1, kWidth, 1},
                      .outputShape = {1, kWidth, 1},
                      .componentArea = 9.0 * units::um2,
                      .component = pixel})
        .analogArray({.name = "Adc",
                      .role = AnalogRole::Adc,
                      .numComponents = {kWidth, 1, 1},
                      .inputShape = {1, kWidth, 1},
                      .outputShape = {1, kWidth, 1},
                      .componentArea = 1e-9,
                      .component = adc})
        .mipi()
        .map("Input", "PixelArray")
        .spec();
}

} // namespace

int
main()
{
    setLoggingEnabled(false);

    const double activities[] = {0.001, 0.01, 0.05, 0.10, 0.25, 0.50};

    // One batch: the frame-based reference plus every activity level.
    std::vector<spec::DesignSpec> batch = {frameSpec()};
    for (double activity : activities)
        batch.push_back(dvsSpec(activity));

    SweepEngine engine(SweepOptions{.threads = 4});
    std::vector<SweepResult> results = engine.run(batch);
    const SweepResult &frame = results[0];
    if (!frame.feasible) {
        std::printf("frame reference infeasible: %s\n",
                    frame.error.c_str());
        return 1;
    }

    std::printf("Event camera vs frame camera (320x240 @ %.0f fps)\n\n",
                kFps);
    std::printf("frame-based reference: %.2f uJ/frame (%.2f mW)\n\n",
                frame.report.total() / units::uJ,
                frame.report.total() * kFps / units::mW);

    std::printf("%-16s %14s %14s %10s\n", "scene activity",
                "E/frame[uJ]", "power[mW]", "vs frame");
    for (size_t i = 0; i < std::size(activities); ++i) {
        const SweepResult &r = results[i + 1];
        if (!r.feasible) {
            std::printf("%13.1f%%  -- infeasible: %s\n",
                        100.0 * activities[i], r.error.c_str());
            continue;
        }
        std::printf("%13.1f%%  %14.3f %14.3f %9.2fx\n",
                    100.0 * activities[i],
                    r.report.total() / units::uJ,
                    r.report.total() * kFps / units::mW,
                    r.report.total() / frame.report.total());
    }

    std::printf("\ntakeaway: event-driven sensing wins whenever the "
                "scene is sparse — the access counts (and the MIPI "
                "volume) follow the activity, not the resolution. "
                "At high activity the 16-bit event packets overtake "
                "plain 8-bit frames.\n");
    return 0;
}
