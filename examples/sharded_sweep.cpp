/**
 * @file
 * Example: splitting one sweep across processes — the library view of
 * what `camj_sweep plan / run / merge` does.
 *
 * A 108-point sweepGrid study is planned into 3 shards, each shard is
 * evaluated by its own single-threaded engine exactly as a separate
 * worker process would (ShardSpecSource -> InOrderSink -> ReindexSink
 * -> JsonlSink), and the merge reducer folds the shard files back
 * into one in-order result stream — byte-identical to a 1-process
 * run — plus summary statistics.
 *
 * In production the three run steps execute on three hosts; the only
 * things that travel are one descriptor JSON per shard (self-
 * contained: base spec + grid + index range) and one JSONL file back.
 *
 * Build & run:  ./build/examples/sharded_sweep
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/jsonl.h"
#include "explore/sweep.h"
#include "spec/samples.h"
#include "spec/shard.h"

using namespace camj;
namespace fs = std::filesystem;

int
main()
{
    setLoggingEnabled(false);

    // The same 108-point study as examples/grid_sweep.cpp — also
    // checked in as examples/detector_sweep.json for the CLI:
    //   camj_sweep plan examples/detector_sweep.json --shards 3
    spec::SweepDocument doc = spec::sampleDetectorStudy();

    const fs::path work =
        fs::temp_directory_path() / "camj_sharded_sweep";
    fs::create_directories(work);

    // ---- plan: one self-contained descriptor file per shard -------
    const size_t shards = 3;
    const std::vector<std::string> descriptors = spec::writeShardPlan(
        doc, shards, spec::ShardMode::Contiguous, work.string(),
        "detector");
    std::printf("planned %zu points into %zu shards:\n",
                doc.grid.points(), shards);
    for (const std::string &path : descriptors)
        std::printf("  %s\n", path.c_str());

    // ---- run: each shard as its own worker --------------------------
    // Each loop iteration is what one `camj_sweep run` process does
    // on one host: load the descriptor, evaluate only the owned index
    // range, write an in-order JSONL shard file with GLOBAL indices.
    std::vector<std::string> shard_files;
    for (const std::string &path : descriptors) {
        const spec::ShardDescriptor d = spec::loadShardFile(path);
        spec::GridSpecSource grid = d.gridSource();
        spec::ShardSpecSource source(grid, d.shard);

        const std::string out_path = strprintf(
            "%s/shard-%zu.jsonl", work.string().c_str(),
            d.shard.shardIndex);
        std::ofstream out(out_path, std::ios::binary);
        JsonlSink lines(out);
        ReindexSink global(lines, [&](size_t local) {
            return d.shard.globalIndex(local);
        });
        InOrderSink ordered(global);
        SweepEngine engine(SweepOptions{.threads = 1,
                                        .incremental = true});
        const StreamStats stats = engine.runStream(source, ordered);
        std::printf("shard %zu/%zu: [%zu, %zu) -> %zu line(s)\n",
                    d.shard.shardIndex, d.shard.shardCount,
                    d.shard.begin, d.shard.end, stats.delivered);
        shard_files.push_back(out_path);
    }

    // ---- merge: back to one in-order stream -------------------------
    std::ostringstream merged;
    const MergeSummary summary = mergeShardFiles(
        shard_files, merged, /*top_k=*/5,
        /*expected_total=*/doc.grid.points());
    std::printf("\n%s", formatMergeSummary(summary).c_str());

    // The reduced stream is exactly what one process would have
    // produced: same lines, same order, same bytes — so sharding is
    // free of result drift by construction.
    std::printf("\nmerged stream: %zu lines, first line:\n%s\n",
                summary.records,
                merged.str().substr(0, merged.str().find('\n'))
                    .c_str());
    return 0;
}
