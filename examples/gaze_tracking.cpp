/**
 * @file
 * Example: the Ed-Gaze gaze-tracking pipeline (Sec. 6.1-6.3),
 * including the mixed-signal variant of Fig. 10 where downsampling
 * and frame subtraction move into the analog domain — evaluated
 * through the Simulator front-end.
 *
 * Demonstrates three CamJ capabilities on one workload:
 *   1. placement exploration (in vs off sensor, 2D vs 3D),
 *   2. memory-technology exploration (SRAM vs STT-RAM), and
 *   3. signal-domain exploration (digital vs mixed-signal S1/S2).
 *
 * Build & run:  ./build/examples/gaze_tracking
 */

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "explore/breakdown.h"
#include "explore/simulator.h"
#include "usecases/edgaze.h"

using namespace camj;

int
main()
{
    setLoggingEnabled(false);

    std::printf("Ed-Gaze: 640x400 @ 30 fps, 2x2 downsample -> frame "
                "subtract -> ROI DNN (%.1fM MACs/frame)\n\n",
                static_cast<double>(edgazeDnnMacs()) / 1e6);

    const EdgazeVariant variants[] = {
        EdgazeVariant::TwoDOff, EdgazeVariant::TwoDIn,
        EdgazeVariant::ThreeDIn, EdgazeVariant::ThreeDInStt,
        EdgazeVariant::TwoDInMixed,
    };

    Simulator simulator;

    for (int cis_node : {130, 65}) {
        std::printf("--- CIS node %d nm (SoC/stacked die at 22 nm) "
                    "---\n", cis_node);
        std::vector<BreakdownRow> rows;
        for (EdgazeVariant v : variants) {
            EnergyReport r =
                simulator.simulate(*buildEdgaze(v, cis_node));
            rows.push_back(breakdownOf(edgazeVariantName(v), r));
        }
        std::printf("%s\n", formatBreakdownTable(rows).c_str());
    }

    // Drill into one report to show the per-unit view.
    std::printf("--- per-unit drill-down: 2D-In-Mixed @ 65 nm ---\n");
    EnergyReport mixed =
        simulator.simulate(*buildEdgaze(EdgazeVariant::TwoDInMixed, 65));
    std::printf("%s\n", mixed.pretty().c_str());

    std::printf("takeaways:\n");
    std::printf("  * compute-heavy pipelines do NOT belong in a "
                "plain 2D sensor (Finding 1);\n");
    std::printf("  * the 65 nm node loses to 130 nm in-sensor: the "
                "retained frame buffer leaks all frame long;\n");
    std::printf("  * STT-RAM or analog frame buffers remove that "
                "leakage (Findings 2-3).\n");
    return 0;
}
