/**
 * @file
 * Example: field-level diff of two DesignSpec JSON files.
 *
 *   ./build/examples/spec_diff a.json b.json
 *
 * Prints one line per differing field, using the same paths a
 * sweepGrid axis declares ("memories[ActBuf].nodeNm"), so the output
 * doubles as a recipe for turning the difference into a grid axis.
 * Exit status: 0 when the specs are identical, 1 when they differ,
 * 2 on usage/parse errors (like diff(1)).
 *
 * With no arguments it runs a self-demo: the canonical sample
 * detector at 65 nm vs 130 nm / 30 fps vs 120 fps.
 */

#include <cstdio>
#include <vector>

#include "spec/diff.h"
#include "spec/samples.h"
#include "spec/spec.h"

using namespace camj;

int
main(int argc, char **argv)
{
    if (argc != 1 && argc != 3) {
        std::fprintf(stderr, "usage: %s [a.json b.json]\n", argv[0]);
        return 2;
    }

    spec::DesignSpec a, b;
    try {
        if (argc == 3) {
            a = spec::loadSpecFile(argv[1]);
            b = spec::loadSpecFile(argv[2]);
        } else {
            std::printf("(self-demo: sample detector 30fps@65nm vs "
                        "120fps@130nm)\n\n");
            a = spec::sampleDetectorSpec(30.0, 65);
            b = spec::sampleDetectorSpec(120.0, 130);
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::vector<spec::SpecDifference> diffs = spec::diffSpecs(a, b);
    if (diffs.empty()) {
        std::printf("specs '%s' and '%s' are identical\n",
                    a.name.c_str(), b.name.c_str());
        return 0;
    }
    std::printf("%zu field(s) differ between '%s' and '%s':\n\n",
                diffs.size(), a.name.c_str(), b.name.c_str());
    std::printf("%s", spec::formatSpecDiff(diffs).c_str());
    return 1;
}
