/**
 * @file
 * Example: field-level diff AND merge of DesignSpec JSON files.
 *
 *   ./build/examples/spec_diff a.json b.json           # text diff
 *   ./build/examples/spec_diff --json a.json b.json    # diff document
 *   ./build/examples/spec_diff --apply base.json diff.json
 *
 * Diffing prints one line per differing field, using the same paths a
 * sweepGrid axis declares ("memories[ActBuf].nodeNm"), so the output
 * doubles as a recipe for turning the difference into a grid axis.
 * `--json` renders the diff as a shippable document instead; feeding
 * that document to `--apply` patches it onto a base spec and prints
 * the resulting spec JSON — apply(a, diff(a, b)) reproduces b.
 *
 * Exit status: 0 when identical (or an apply succeeded), 1 when the
 * specs differ, 2 on usage/parse errors (like diff(1)).
 *
 * With no arguments it runs a self-demo: the canonical sample
 * detector at 65 nm vs 130 nm / 30 fps vs 120 fps.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "spec/diff.h"
#include "spec/samples.h"
#include "spec/spec.h"

using namespace camj;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [a.json b.json]\n"
                 "       %s --json a.json b.json\n"
                 "       %s --apply base.json diff.json\n",
                 argv0, argv0, argv0);
    return 2;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s' for reading", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
applyMode(const char *base_path, const char *diff_path)
{
    const spec::DesignSpec base = spec::loadSpecFile(base_path);
    const std::vector<spec::SpecDifference> diffs =
        spec::diffFromJson(readFile(diff_path));
    const spec::DesignSpec patched = spec::applyDiff(base, diffs);
    std::printf("%s", spec::toJson(patched).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool as_json = false, apply = false;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            as_json = true;
        else if (arg == "--apply")
            apply = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(argv[0]);
        else
            files.push_back(argv[i]);
    }
    if ((apply && (as_json || files.size() != 2)) ||
        (!apply && files.size() != 0 && files.size() != 2))
        return usage(argv[0]);

    try {
        if (apply)
            return applyMode(files[0], files[1]);

        spec::DesignSpec a, b;
        if (files.size() == 2) {
            a = spec::loadSpecFile(files[0]);
            b = spec::loadSpecFile(files[1]);
        } else {
            std::printf("(self-demo: sample detector 30fps@65nm vs "
                        "120fps@130nm)\n\n");
            a = spec::sampleDetectorSpec(30.0, 65);
            b = spec::sampleDetectorSpec(120.0, 130);
        }

        std::vector<spec::SpecDifference> diffs = spec::diffSpecs(a, b);
        if (as_json) {
            std::printf("%s", spec::diffToJson(diffs).c_str());
            return diffs.empty() ? 0 : 1;
        }
        if (diffs.empty()) {
            std::printf("specs '%s' and '%s' are identical\n",
                        a.name.c_str(), b.name.c_str());
            return 0;
        }
        std::printf("%zu field(s) differ between '%s' and '%s':\n\n",
                    diffs.size(), a.name.c_str(), b.name.c_str());
        std::printf("%s", spec::formatSpecDiff(diffs).c_str());
        return 1;
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
