#!/usr/bin/env python3
"""Perf-floor guard over BENCH_simulator.json.

Reads the artifact perf_simulator writes, checks every committed
floor and invariant below, and exits non-zero naming each violation.
The floors are deliberately conservative (roughly an order of
magnitude under a warm developer machine) so shared CI runners don't
flake, while a real hot-path regression — an accidental O(n^2), a
re-introduced allocation storm, a lost cache fast-path — still trips
them. Ratio floors (speedups, byte-identity flags) carry the real
acceptance bars: they compare two paths measured on the same host in
the same process, so they are immune to runner speed.

Usage:
    check_bench_floors.py BENCH_simulator.json [--summary OUT.md]
        [--baseline OLD.json]

--summary writes a markdown table of every checked number next to its
floor (and next to the baseline artifact's number when --baseline
names one, the before/after view CI uploads).
"""

import argparse
import json
import sys

# (json path, floor, kind) — kind "min" for >=, "max" for <=,
# "true" for must-be-true. Paths are dot-separated member chains.
FLOORS = [
    # specOps: the JSON hot-path primitives. Absolute floors are the
    # runner-tolerant backstop; the allocation counts are exact
    # invariants (compare/hash walk the tree without allocating, and
    # the compact Value caps what parse/clone may allocate).
    ("specOps.valueBytes", 16, "max"),
    ("specOps.parse.opsPerSec", 5000, "min"),
    ("specOps.dump.opsPerSec", 10000, "min"),
    ("specOps.clone.opsPerSec", 15000, "min"),
    ("specOps.compare.opsPerSec", 100000, "min"),
    ("specOps.hash.opsPerSec", 20000, "min"),
    ("specOps.compare.allocsPerOp", 0, "max"),
    ("specOps.hash.allocsPerOp", 0, "max"),
    ("specOps.parse.allocsPerOp", 400, "max"),
    ("specOps.clone.allocsPerOp", 400, "max"),
    # Grid expansion: the in-place pooled-workspace path against the
    # legacy clone-per-point emulation — the PR acceptance bar the
    # binary itself also enforces, re-checked here so a silently
    # edited bench can't drop it.
    ("gridSweep.expansion.speedupVsLegacy", 2.0, "min"),
    ("gridSweep.expansion.identicalToLegacy", None, "true"),
    ("gridSweep.expansion.inPlace.designsPerSec", 20000, "min"),
    ("gridSweep.pipelineIdenticalAcrossPaths", None, "true"),
    # Staged re-evaluation and the compiled-point LRU.
    ("incrementalSweep.speedup", 2.0, "min"),
    ("incrementalSweep.identicalToFullRebuild", None, "true"),
    ("stridedSweep.speedupVsGen1", 2.0, "min"),
    ("stridedSweep.identicalToFullRebuild", None, "true"),
    # The on-disk outcome store must stay an optimization, never a
    # different answer.
    ("cachedSweep.identicalToFullRebuild", None, "true"),
    # The sweep service: a served stream is the same bytes as a local
    # run (the service contract), and the daemon's loopback round
    # trip stays a bounded overhead over the library path.
    ("servedSweep.identicalToInProcess", None, "true"),
    ("servedSweep.overheadRatio", 25.0, "max"),
    ("servedSweep.served.designsPerSec", 10, "min"),
    # Fast-forward cycle simulation: the closed-form period jumps
    # must stay bit-identical to the tick-loop reference (checked
    # in-binary too; re-checked here so a silently edited bench can't
    # drop it) and keep the PR acceptance bar of 5x on the
    # cycle-dominated frame. The serial-sweep floor rises with it:
    # the timing stage dominated the sweep before fast-forward
    # (~81 designs/sec); with it a warm machine clears ~400.
    ("cycleSim.identicalToTickLoop", None, "true"),
    ("cycleSim.speedup", 5.0, "min"),
    ("serialSweep.designsPerSec", 120, "min"),
]


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def fmt(value):
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.3f}"
    return str(value)


def check(doc):
    failures = []
    rows = []
    for path, floor, kind in FLOORS:
        value = lookup(doc, path)
        if value is None:
            failures.append(f"{path}: missing from the artifact")
            rows.append((path, "MISSING", floor, kind, False))
            continue
        if kind == "min":
            ok = value >= floor
        elif kind == "max":
            ok = value <= floor
        else:
            ok = value is True
        if not ok:
            bound = {"min": ">=", "max": "<=", "true": "=="}[kind]
            want = floor if kind != "true" else True
            failures.append(
                f"{path}: {fmt(value)} (wants {bound} {fmt(want)})")
        rows.append((path, value, floor, kind, ok))
    return failures, rows


def write_summary(out_path, rows, baseline):
    lines = [
        "# Bench floor summary",
        "",
        "| metric | value | " +
        ("baseline | " if baseline else "") + "floor | ok |",
        "|---|---|" + ("---|" if baseline else "") + "---|---|",
    ]
    for path, value, floor, kind, ok in rows:
        bound = {"min": ">= ", "max": "<= ", "true": "== true, "}[kind]
        floor_txt = bound + (fmt(floor) if kind != "true" else "")
        floor_txt = floor_txt.rstrip(", ")
        cells = [path, fmt(value)]
        if baseline:
            base_value = lookup(baseline, path)
            cells.append("-" if base_value is None else fmt(base_value))
        cells += [floor_txt, "yes" if ok else "**NO**"]
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    with open(out_path, "w") as out:
        out.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="BENCH_simulator.json path")
    parser.add_argument("--summary", help="markdown summary to write")
    parser.add_argument(
        "--baseline",
        help="a previous BENCH_simulator.json for the before/after "
             "column (informational only — floors are what fail)")
    args = parser.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except OSError as e:
            print(f"note: baseline unreadable, skipping: {e}")

    failures, rows = check(doc)
    if args.summary:
        write_summary(args.summary, rows, baseline)

    for path, value, floor, kind, ok in rows:
        mark = "ok " if ok else "FAIL"
        print(f"  [{mark}] {path} = {fmt(value)}")
    if failures:
        print(f"\n{len(failures)} perf floor(s) violated:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} perf floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
